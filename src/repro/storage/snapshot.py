"""Crash-safe persistent OIP index snapshots.

Every join so far rebuilt both OIP partitionings from scratch.  This
module persists the OIPCREATE output — the partition directory, the
columnar run contents, the derived ``k`` and the statistics the planner
needs — in a versioned binary container that can be reloaded much faster
than the build, without giving up a single bit of the differential
guarantees: a loaded index replays Algorithm 1's exact head insertions,
so pairs, :class:`~repro.storage.metrics.CostCounters`,
``ResilienceCounters`` and run reports match an in-memory rebuild.

On-disk container (``save_index`` / ``load_index``)::

    +----------------------------------------------------------+
    | header   "<4sII"  magic b"OIPX" | version | section count|
    | table    "<16sQII" per section: name | offset | len | crc|
    | payloads  one contiguous blob per section                |
    +----------------------------------------------------------+

Sections (all integers ``array('q')`` in the writer's byte order, which
is recorded in ``meta`` and byte-swapped on load when needed):

``meta``
    JSON: format/generation, ``k`` bookkeeping (mode, pinned values,
    derivation trace summary), the two ``OIPConfiguration`` triples,
    device ``tuples_per_block``, cost weights, byte order.
``stats``
    JSON per side: cardinality, time range, max duration, duration
    fraction, partition/tuple/block counts — what
    :meth:`repro.engine.planner.JoinPlanner.plan` reads without paying
    for the array sections.
``fingerprints``
    JSON per side: cardinality + CRC32 endpoint digest (+ payload
    content digest when payloads are JSON-stable).  A snapshot loads
    only against the relation it was built from.
``dir_<side>``
    ``(i, j, tuple_count)`` triples in *creation order* (``j`` ASC,
    ``i`` DESC) — replaying them through Algorithm 1's two head-insert
    branches reproduces the lazy partition list pointer-for-pointer.
``pos_<side>``
    For every tuple in creation order, its position in the source
    relation.  Loading indexes into the caller's relation, so the
    loaded runs hold the *same tuple objects* a rebuild would.
``blocks_<side>``
    Per-block stored CRC32 checksums in creation order (omitted when
    payloads are unstable; then checksums are re-folded on load).
``starts_<side>`` / ``ends_<side>``
    Columnar endpoints, used by ``fsck`` deep validation and by
    :class:`MaintainedIndex` (which has no source relation to index
    into).
``payloads_<side>``
    JSON payload list (only when every payload is ``None``/bool/int/
    float/str), enabling journaled maintenance without the original
    relation.

Durability: :func:`atomic_commit` writes ``<path>.tmp``, flushes,
fsyncs, renames over the target and fsyncs the directory, under an
advisory ``flock`` (``<path>.lock``).  The four deterministic
write-path faults from :class:`repro.storage.faults.WriteFaultPolicy`
are honoured with true crash semantics: a torn write leaves a truncated
temp file, a failed rename leaves a complete orphan temp file, a
dropped fsync leaves the *renamed target* truncated, and a post-write
bit-flip silently corrupts one bit for the section CRCs to catch.

Maintenance: :class:`MaintenanceJournal` is an append-only CRC-framed
record log (magic b"OIPJ") tied to a snapshot generation;
:class:`MaintainedIndex` journals ``repro.core.incremental`` deltas
before applying them and compacts back into a fresh snapshot.
:func:`fsck_index` validates everything, truncates torn journal tails,
clears stale temp files and reports a machine-readable verdict.
"""

from __future__ import annotations

import json
import os
import struct
import sys
import time
import zlib
from array import array
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from .faults import (
    SimulatedCrashError,
    WriteFault,
    WriteFaultKind,
    WriteFaultPolicy,
)

try:  # pragma: no cover - POSIX everywhere we run CI
    import fcntl
except ImportError:  # pragma: no cover
    fcntl = None  # type: ignore[assignment]

__all__ = [
    "SNAPSHOT_MAGIC",
    "SNAPSHOT_VERSION",
    "JOURNAL_MAGIC",
    "JOURNAL_VERSION",
    "SnapshotError",
    "SnapshotFormatError",
    "SnapshotVersionError",
    "SnapshotMismatchError",
    "JournalReplayError",
    "LoadedIndex",
    "ParsedSnapshot",
    "JournalState",
    "MaintenanceJournal",
    "MaintainedIndex",
    "advisory_lock",
    "atomic_commit",
    "fsck_index",
    "journal_path",
    "load_index",
    "read_statistics",
    "relation_endpoint_digest",
    "save_index",
    "tmp_path",
]

SNAPSHOT_MAGIC = b"OIPX"
SNAPSHOT_VERSION = 1
JOURNAL_MAGIC = b"OIPJ"
JOURNAL_VERSION = 1

_HEADER = struct.Struct("<4sII")
_SECTION = struct.Struct("<16sQII")
_FRAME = struct.Struct("<II")
_JOURNAL_HEADER = struct.Struct("<4sIII")
_MAX_SECTIONS = 1024
_SIDES = ("outer", "inner")
#: Payload types whose ``repr`` and JSON round trip are both stable, so
#: block checksums folded at save time stay valid at load time.
_STABLE_PAYLOAD_TYPES = frozenset(
    (type(None), bool, int, float, str)
)

TMP_SUFFIX = ".tmp"
LOCK_SUFFIX = ".lock"
JOURNAL_SUFFIX = ".journal"


# ----------------------------------------------------------------------
# Errors
# ----------------------------------------------------------------------


class SnapshotError(RuntimeError):
    """A snapshot could not be used; ``reason`` is a stable slug the
    degradation metrics and fsck verdicts are keyed on."""

    reason = "snapshot"

    def __init__(self, message: str, *, reason: Optional[str] = None) -> None:
        super().__init__(message)
        if reason is not None:
            self.reason = reason


class SnapshotFormatError(SnapshotError):
    """The container is structurally invalid (magic, bounds, CRC)."""

    reason = "format"


class SnapshotVersionError(SnapshotFormatError):
    """The container declares a format version this code cannot read."""

    reason = "version"


class SnapshotMismatchError(SnapshotError):
    """A valid snapshot that does not belong to this join (different
    relations, different configuration)."""

    reason = "mismatch"


class JournalReplayError(SnapshotError):
    """A scanned journal record (a whole, CRC-valid frame) could not be
    applied to the snapshot it is based on.

    Carries the record's zero-based ``record_index`` and the byte
    ``offset`` of its frame within the journal file, so an operator can
    inspect or trim the exact record instead of guessing which delta is
    poisoned.
    """

    reason = "journal_replay"

    def __init__(
        self,
        message: str,
        *,
        record_index: int,
        offset: Optional[int],
        path: Optional[str] = None,
    ) -> None:
        super().__init__(message, reason="journal_replay")
        self.record_index = record_index
        self.offset = offset
        self.path = path


# ----------------------------------------------------------------------
# Paths, locks, atomic commits
# ----------------------------------------------------------------------


def tmp_path(path: str) -> str:
    """The temp file :func:`atomic_commit` stages *path* through."""
    return path + TMP_SUFFIX


def journal_path(path: str) -> str:
    """The maintenance journal that belongs to snapshot *path*."""
    return path + JOURNAL_SUFFIX


def _lock_file(path: str) -> str:
    return path + LOCK_SUFFIX


@contextmanager
def advisory_lock(path: str, exclusive: bool = True) -> Iterator[None]:
    """Advisory ``flock`` on ``<path>.lock`` (shared for readers,
    exclusive for writers).  A no-op where ``fcntl`` is unavailable —
    the rename-based commit is still atomic, only concurrent-open
    politeness is lost."""
    if fcntl is None:  # pragma: no cover - non-POSIX fallback
        yield
        return
    handle = open(_lock_file(path), "a+b")
    try:
        fcntl.flock(
            handle.fileno(),
            fcntl.LOCK_EX if exclusive else fcntl.LOCK_SH,
        )
        try:
            yield
        finally:
            fcntl.flock(handle.fileno(), fcntl.LOCK_UN)
    finally:
        handle.close()


def _fsync_directory(directory: str) -> None:
    """Make a rename durable; ignored where directories can't be
    fsynced (some filesystems/platforms)."""
    try:
        fd = os.open(directory or ".", os.O_RDONLY)
    except OSError:  # pragma: no cover - platform quirk
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - platform quirk
        pass
    finally:
        os.close(fd)


def _flip_bit(path: str, offset: int) -> None:
    """Post-commit bit rot: XOR one deterministic bit at *offset*."""
    with open(path, "r+b") as handle:
        handle.seek(0, os.SEEK_END)
        size = handle.tell()
        if size == 0:
            return
        offset = min(offset, size - 1)
        handle.seek(offset)
        byte = handle.read(1)[0]
        handle.seek(offset)
        handle.write(bytes((byte ^ (1 << (offset % 8)),)))


def atomic_commit(
    path: str,
    data: bytes,
    *,
    write_faults: Optional[WriteFaultPolicy] = None,
    commit: int = 0,
    fsync: bool = True,
    cancellation: Any = None,
    pre_rename_delay_s: float = 0.0,
) -> int:
    """Publish *data* at *path* via temp file + fsync + rename.

    When *write_faults* schedules a crash for this commit, the on-disk
    state is left exactly as a real crash at that stage would leave it
    and :class:`SimulatedCrashError` propagates.  Any *other* failure —
    including cooperative cancellation, checked right before the write
    and right before the rename — removes the temp file, so an
    interrupted save never leaves ``*.tmp`` litter beside a valid
    index.

    *pre_rename_delay_s* sleeps between writing the temp file and
    publishing it — it widens the window in which an external crash
    (e.g. ``SIGKILL``) lands with a complete ``*.tmp`` beside the old
    index, which is what the recovery smoke tests exercise.
    """
    staging = tmp_path(path)
    fault = WriteFault(WriteFaultKind.OK)
    if write_faults is not None:
        fault = write_faults.decide_commit(
            os.path.basename(path), len(data), commit
        )
    try:
        if cancellation is not None:
            cancellation.raise_if_cancelled()
        with open(staging, "wb") as handle:
            if fault.kind is WriteFaultKind.TORN_WRITE:
                handle.write(data[: fault.offset or 0])
                handle.flush()
                os.fsync(handle.fileno())
                raise SimulatedCrashError(path, "write", fault.offset)
            handle.write(data)
            handle.flush()
            # A dropped fsync: the write call "succeeded" but the data
            # never reached the platters before the crash below.
            if fsync and fault.kind is not WriteFaultKind.DROPPED_FSYNC:
                os.fsync(handle.fileno())
        if pre_rename_delay_s > 0.0:
            time.sleep(pre_rename_delay_s)
        if cancellation is not None:
            cancellation.raise_if_cancelled()
        if fault.kind is WriteFaultKind.FAILED_RENAME:
            raise SimulatedCrashError(path, "rename")
        os.replace(staging, path)
        if fault.kind is WriteFaultKind.DROPPED_FSYNC:
            # The rename was recorded but the unsynced data was lost:
            # the crash leaves the *target* torn at the lost offset.
            os.truncate(path, fault.offset or 0)
            raise SimulatedCrashError(path, "fsync", fault.offset)
        if fsync:
            _fsync_directory(os.path.dirname(os.path.abspath(path)))
        if fault.kind is WriteFaultKind.BIT_FLIP:
            _flip_bit(path, fault.offset or 0)
    except SimulatedCrashError:
        raise
    except BaseException:
        try:
            os.unlink(staging)
        except OSError:
            pass
        raise
    return len(data)


# ----------------------------------------------------------------------
# Section container
# ----------------------------------------------------------------------


def _pack_sections(sections: Dict[str, bytes]) -> bytes:
    """Serialise the ``{name: payload}`` mapping into the container."""
    if len(sections) > _MAX_SECTIONS:
        raise ValueError(f"too many sections: {len(sections)}")
    header = _HEADER.pack(SNAPSHOT_MAGIC, SNAPSHOT_VERSION, len(sections))
    offset = len(header) + _SECTION.size * len(sections)
    table = []
    payloads = []
    for name, payload in sections.items():
        raw = name.encode("ascii")
        if len(raw) > 16:
            raise ValueError(f"section name too long: {name!r}")
        table.append(
            _SECTION.pack(
                raw.ljust(16, b"\x00"),
                offset,
                len(payload),
                zlib.crc32(payload),
            )
        )
        payloads.append(payload)
        offset += len(payload)
    return b"".join([header, *table, *payloads])


def _parse_section_table(
    blob: bytes, total_size: Optional[int] = None
) -> List[Tuple[str, int, int, int]]:
    if total_size is None:
        total_size = len(blob)
    if len(blob) < _HEADER.size:
        raise SnapshotFormatError(
            f"truncated header: {len(blob)} bytes", reason="truncated"
        )
    magic, version, count = _HEADER.unpack_from(blob)
    if magic != SNAPSHOT_MAGIC:
        raise SnapshotFormatError(
            f"bad magic {magic!r}", reason="bad_magic"
        )
    if version != SNAPSHOT_VERSION:
        raise SnapshotVersionError(
            f"unsupported snapshot format version {version} "
            f"(this build reads {SNAPSHOT_VERSION})"
        )
    if count > _MAX_SECTIONS:
        raise SnapshotFormatError(
            f"implausible section count {count}", reason="truncated"
        )
    table_end = _HEADER.size + _SECTION.size * count
    if len(blob) < table_end:
        raise SnapshotFormatError(
            "truncated section table", reason="truncated"
        )
    entries = []
    for index in range(count):
        raw, offset, length, crc = _SECTION.unpack_from(
            blob, _HEADER.size + _SECTION.size * index
        )
        try:
            name = raw.rstrip(b"\x00").decode("ascii")
        except UnicodeDecodeError:
            raise SnapshotFormatError(
                "non-ascii section name", reason="truncated"
            ) from None
        if offset < table_end or offset + length > total_size:
            raise SnapshotFormatError(
                f"section {name!r} [{offset}, {offset + length}) "
                f"outside the {total_size}-byte container",
                reason="truncated",
            )
        entries.append((name, offset, length, crc))
    return entries


def _parse_sections(blob: bytes) -> Dict[str, bytes]:
    """Validate the container and return ``{name: payload}``."""
    sections: Dict[str, bytes] = {}
    for name, offset, length, crc in _parse_section_table(blob):
        payload = blob[offset : offset + length]
        if zlib.crc32(payload) != crc:
            raise SnapshotFormatError(
                f"checksum mismatch in section {name!r}",
                reason="section_crc",
            )
        sections[name] = payload
    return sections


def _json_bytes(value: Any) -> bytes:
    return json.dumps(
        value, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")


def _json_section(sections: Dict[str, bytes], name: str) -> Any:
    try:
        payload = sections[name]
    except KeyError:
        raise SnapshotFormatError(
            f"missing section {name!r}", reason="missing_section"
        ) from None
    try:
        return json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise SnapshotFormatError(
            f"invalid JSON in section {name!r}: {error}",
            reason="section_json",
        ) from None


def _array_section(
    sections: Dict[str, bytes], name: str, byteorder: str
) -> array:
    try:
        payload = sections[name]
    except KeyError:
        raise SnapshotFormatError(
            f"missing section {name!r}", reason="missing_section"
        ) from None
    values = array("q")
    if len(payload) % values.itemsize:
        raise SnapshotFormatError(
            f"section {name!r} is not a whole number of int64s",
            reason="inconsistent",
        )
    values.frombytes(payload)
    if byteorder != sys.byteorder:
        values.byteswap()
    return values


# ----------------------------------------------------------------------
# Fingerprints
# ----------------------------------------------------------------------


def _digest_cache(relation: Any) -> Optional[Dict[str, int]]:
    """The relation's lazily-created fingerprint memo, or ``None`` for
    duck-typed relations without the ``_digests`` slot.

    Memoisation is sound because :class:`~repro.core.relation
    .TemporalRelation` is immutable after construction — every derived
    operation (filter, head, sample) returns a *new* relation, so a
    digest computed once holds for the object's lifetime.  Both
    fingerprints are O(n) per relation; caching them makes repeated
    save/load cycles against the same relation pay that cost once.
    """
    try:
        cache = relation._digests
        if cache is None:
            cache = relation._digests = {}
        return cache
    except AttributeError:  # pragma: no cover - non-standard relation
        return None


def relation_endpoint_digest(relation: Any) -> int:
    """Order-sensitive CRC32 over the relation's endpoint columns.

    Computed on little-endian bytes so the digest — unlike the array
    sections — is identical across writer platforms.  Memoised per
    relation instance (see :func:`_digest_cache`).
    """
    cache = _digest_cache(relation)
    if cache is not None and "endpoint" in cache:
        return cache["endpoint"]
    tuples = relation.tuples
    starts = array("q", [tup.start for tup in tuples])
    ends = array("q", [tup.end for tup in tuples])
    if sys.byteorder != "little":  # pragma: no cover - big-endian host
        starts.byteswap()
        ends.byteswap()
    crc = zlib.crc32(ends.tobytes(), zlib.crc32(starts.tobytes()))
    if cache is not None:
        cache["endpoint"] = crc
    return crc


def _payloads_stable(tuples: Sequence[Any]) -> bool:
    return all(type(tup.payload) in _STABLE_PAYLOAD_TYPES for tup in tuples)


def _content_digest(relation: Any) -> int:
    """Order-sensitive CRC32 over ``repr`` of the payload column,
    memoised per relation instance (see :func:`_digest_cache`)."""
    cache = _digest_cache(relation)
    if cache is not None and "content" in cache:
        return cache["content"]
    crc = zlib.crc32(
        repr(
            [tup.payload for tup in relation.tuples]
        ).encode("utf-8", "replace")
    )
    if cache is not None:
        cache["content"] = crc
    return crc


# ----------------------------------------------------------------------
# Saving
# ----------------------------------------------------------------------


def _derive_snapshot_k(
    outer: Any,
    inner: Any,
    *,
    device: Any,
    weights: Any,
    k: Optional[int],
    k_outer: Optional[int],
    k_inner: Optional[int],
    use_exact_root: bool,
    use_histogram_statistics: bool,
) -> Tuple[int, int, str, Any]:
    """Mirror ``OIPJoin``'s k selection (mode, caps and all) so a saved
    index is interchangeable with what the join would build."""
    if k is not None and (k_outer is not None or k_inner is not None):
        raise ValueError("pass either k or the k_outer/k_inner pair")
    if (k_outer is None) != (k_inner is None):
        raise ValueError("k_outer and k_inner must be pinned together")
    derivation = None
    if k is not None:
        mode = "fixed"
        chosen_outer = chosen_inner = k
    elif k_outer is not None:
        mode = "per_side"
        chosen_outer, chosen_inner = k_outer, k_inner
    else:
        mode = "derived"
        from ..core.granules import cost_model_for, derive_k

        if use_histogram_statistics:
            from ..core.statistics import histogram_cost_model

            effective = weights if weights is not None else device.weights
            model = histogram_cost_model(
                outer,
                inner,
                tuples_per_block=device.tuples_per_block,
                weights=effective,
            )
        else:
            model = cost_model_for(
                outer, inner, device=device, weights=weights
            )
        derivation = derive_k(model, use_exact_root=use_exact_root)
        chosen_outer = chosen_inner = derivation.k
    chosen_outer = max(1, min(chosen_outer, outer.time_range_duration))
    chosen_inner = max(1, min(chosen_inner, inner.time_range_duration))
    return chosen_outer, chosen_inner, mode, derivation


def _serialize_side(
    relation: Any, partition_list: Any
) -> Tuple[array, array, array, array, array]:
    """Flatten one lazy partition list into creation-order columns."""
    nodes = list(partition_list.iter_nodes())
    nodes.reverse()  # grid order is (j DESC, i ASC); creation order is
    # its exact reverse, which is what replay needs.
    position_of = {
        id(tup): position for position, tup in enumerate(relation.tuples)
    }
    directory = array("q")
    positions = array("q")
    starts = array("q")
    ends = array("q")
    checksums = array("q")
    for node in nodes:
        count = 0
        for block in node.run.blocks:
            checksums.append(block.checksum)
            for tup in block.tuples:
                positions.append(position_of[id(tup)])
                starts.append(tup.start)
                ends.append(tup.end)
            count += len(block)
        directory.append(node.i)
        directory.append(node.j)
        directory.append(count)
    return directory, positions, starts, ends, checksums


def _next_generation(path: str) -> int:
    """Auto-increment: one past the existing snapshot's generation."""
    try:
        with open(path, "rb") as handle:
            blob = handle.read()
        meta = _json_section(_parse_sections(blob), "meta")
        return int(meta["generation"]) + 1
    except (OSError, SnapshotError, KeyError, TypeError, ValueError):
        return 0


def save_index(
    path: str,
    outer: Any,
    inner: Any,
    *,
    device: Any = None,
    weights: Any = None,
    k: Optional[int] = None,
    k_outer: Optional[int] = None,
    k_inner: Optional[int] = None,
    use_exact_root: bool = True,
    use_histogram_statistics: bool = False,
    store_payloads: bool = True,
    generation: Optional[int] = None,
    write_faults: Optional[WriteFaultPolicy] = None,
    cancellation: Any = None,
    fsync: bool = True,
    pre_rename_delay_s: float = 0.0,
) -> Dict[str, Any]:
    """Build both OIP partitionings and persist them atomically.

    Returns a summary dict (path, bytes, generation, k, partition
    counts).  ``generation`` defaults to one past any existing
    snapshot's at *path* (0 for a fresh file).
    """
    # Imported lazily: repro.storage must stay importable without
    # pulling the whole core layer in at import time.
    from ..core.lazy_list import oip_create
    from ..core.oip import OIPConfiguration
    from .device import DeviceProfile
    from .manager import StorageManager

    if outer.is_empty or inner.is_empty:
        raise ValueError("cannot snapshot an empty relation")
    if device is None:
        device = DeviceProfile.main_memory()
    chosen_outer, chosen_inner, mode, derivation = _derive_snapshot_k(
        outer,
        inner,
        device=device,
        weights=weights,
        k=k,
        k_outer=k_outer,
        k_inner=k_inner,
        use_exact_root=use_exact_root,
        use_histogram_statistics=use_histogram_statistics,
    )
    config_outer = OIPConfiguration.for_relation(outer, chosen_outer)
    config_inner = OIPConfiguration.for_relation(inner, chosen_inner)
    storage = StorageManager(device=device)
    outer_list = oip_create(outer, config_outer, storage)
    inner_list = oip_create(inner, config_inner, storage)
    if generation is None:
        generation = _next_generation(path)

    effective_weights = weights if weights is not None else device.weights
    sections: Dict[str, bytes] = {}
    stats: Dict[str, Any] = {}
    fingerprints: Dict[str, Any] = {}
    payloads_stored = True
    sides = (
        ("outer", outer, outer_list, config_outer),
        ("inner", inner, inner_list, config_inner),
    )
    for side, relation, partition_list, config in sides:
        directory, positions, starts, ends, checksums = _serialize_side(
            relation, partition_list
        )
        tuples = relation.tuples
        stable = _payloads_stable(tuples)
        sections[f"dir_{side}"] = directory.tobytes()
        sections[f"pos_{side}"] = positions.tobytes()
        sections[f"starts_{side}"] = starts.tobytes()
        sections[f"ends_{side}"] = ends.tobytes()
        if stable:
            # Folded checksums depend only on (start, end, repr(payload)),
            # all stable for these types — safe to adopt at load time.
            sections[f"blocks_{side}"] = checksums.tobytes()
            if store_payloads:
                sections[f"payloads_{side}"] = _json_bytes(
                    [tup.payload for tup in tuples]
                )
            else:
                payloads_stored = False
        else:
            payloads_stored = False
        block_count = sum(
            len(node.run) for node in partition_list.iter_nodes()
        )
        stats[side] = {
            "cardinality": relation.cardinality,
            "time_range": list(relation.time_range.as_tuple()),
            "max_duration": relation.max_duration,
            "duration_fraction": relation.duration_fraction,
            "partitions": partition_list.partition_count,
            "tuples": partition_list.tuple_count,
            "blocks": block_count,
        }
        fingerprints[side] = {
            "cardinality": relation.cardinality,
            "endpoint_crc": relation_endpoint_digest(relation),
            "content_crc": _content_digest(relation) if stable else None,
        }

    meta = {
        "format": SNAPSHOT_VERSION,
        "generation": generation,
        "byteorder": sys.byteorder,
        "tuples_per_block": device.tuples_per_block,
        "weights": {
            "cpu": effective_weights.cpu,
            "io": effective_weights.io,
        },
        "use_exact_root": use_exact_root,
        "use_histogram_statistics": use_histogram_statistics,
        "k_mode": mode,
        "pinned_k": k,
        "pinned_k_outer": k_outer,
        "pinned_k_inner": k_inner,
        "k_outer": chosen_outer,
        "k_inner": chosen_inner,
        "k_steps": derivation.steps if derivation is not None else None,
        "k_oscillated": (
            derivation.oscillated if derivation is not None else None
        ),
        "config_outer": {
            "k": config_outer.k, "d": config_outer.d, "o": config_outer.o
        },
        "config_inner": {
            "k": config_inner.k, "d": config_inner.d, "o": config_inner.o
        },
        "payloads_stored": payloads_stored,
        "outer_name": outer.name,
        "inner_name": inner.name,
    }
    ordered: Dict[str, bytes] = {
        "meta": _json_bytes(meta),
        "stats": _json_bytes(stats),
        "fingerprints": _json_bytes(fingerprints),
    }
    ordered.update(sections)
    blob = _pack_sections(ordered)
    with advisory_lock(path, exclusive=True):
        atomic_commit(
            path,
            blob,
            write_faults=write_faults,
            fsync=fsync,
            cancellation=cancellation,
            pre_rename_delay_s=pre_rename_delay_s,
        )
    return {
        "path": path,
        "bytes": len(blob),
        "generation": generation,
        "k_outer": chosen_outer,
        "k_inner": chosen_inner,
        "k_mode": mode,
        "outer_partitions": outer_list.partition_count,
        "inner_partitions": inner_list.partition_count,
        "payloads_stored": payloads_stored,
        "sections": list(ordered),
    }


# ----------------------------------------------------------------------
# Loading
# ----------------------------------------------------------------------


@dataclass
class LoadedIndex:
    """Both partition lists restored from a snapshot, plus the metadata
    the join needs to report exactly what a rebuild would report."""

    path: str
    generation: int
    k_outer: int
    k_inner: int
    outer_list: Any
    inner_list: Any
    meta: Dict[str, Any]
    stats: Dict[str, Any]


def _read_snapshot_bytes(path: str) -> bytes:
    try:
        with open(path, "rb") as handle:
            return handle.read()
    except FileNotFoundError:
        raise SnapshotError(
            f"no snapshot at {path!r}", reason="missing"
        ) from None
    except OSError as error:
        raise SnapshotError(
            f"unreadable snapshot {path!r}: {error}", reason="unreadable"
        ) from None


def _require_meta(sections: Dict[str, bytes]) -> Dict[str, Any]:
    meta = _json_section(sections, "meta")
    if not isinstance(meta, dict):
        raise SnapshotFormatError(
            "meta section is not an object", reason="section_json"
        )
    required = (
        "generation",
        "byteorder",
        "tuples_per_block",
        "k_mode",
        "k_outer",
        "k_inner",
        "config_outer",
        "config_inner",
    )
    for key in required:
        if key not in meta:
            raise SnapshotFormatError(
                f"meta section lacks {key!r}", reason="section_json"
            )
    if meta["byteorder"] not in ("little", "big"):
        raise SnapshotFormatError(
            f"unknown byte order {meta['byteorder']!r}",
            reason="section_json",
        )
    return meta


def _check_expected(meta: Dict[str, Any], expected: Dict[str, Any]) -> None:
    """Degrade rather than load an index built under a different
    configuration — the structure (and the counters) would differ."""

    def mismatch(what: str, stored: Any, wanted: Any) -> None:
        raise SnapshotMismatchError(
            f"snapshot {what} is {stored!r}, join expects {wanted!r}",
            reason="config_mismatch",
        )

    tuples_per_block = expected.get("tuples_per_block")
    if (
        tuples_per_block is not None
        and tuples_per_block != meta["tuples_per_block"]
    ):
        mismatch(
            "tuples_per_block", meta["tuples_per_block"], tuples_per_block
        )
    mode = expected.get("k_mode")
    if mode is None:
        return
    if mode != meta["k_mode"]:
        mismatch("k mode", meta["k_mode"], mode)
    if mode == "fixed" and expected.get("k") != meta.get("pinned_k"):
        mismatch("pinned k", meta.get("pinned_k"), expected.get("k"))
    if mode == "per_side" and (
        expected.get("k_outer") != meta.get("pinned_k_outer")
        or expected.get("k_inner") != meta.get("pinned_k_inner")
    ):
        mismatch(
            "pinned k pair",
            (meta.get("pinned_k_outer"), meta.get("pinned_k_inner")),
            (expected.get("k_outer"), expected.get("k_inner")),
        )
    if mode == "derived":
        # Only the derivation inputs matter — and only when k is
        # actually derived.
        for key in ("use_exact_root", "use_histogram_statistics"):
            if key in expected and bool(expected[key]) != bool(
                meta.get(key)
            ):
                mismatch(key, meta.get(key), expected[key])
        weights = expected.get("weights")
        if weights is not None:
            stored = (meta["weights"]["cpu"], meta["weights"]["io"])
            if tuple(weights) != stored:
                mismatch("cost weights", stored, tuple(weights))


def _check_fingerprints(
    fingerprints: Dict[str, Any], outer: Any, inner: Any
) -> None:
    for side, relation in (("outer", outer), ("inner", inner)):
        recorded = fingerprints.get(side)
        if not isinstance(recorded, dict):
            raise SnapshotFormatError(
                f"fingerprints section lacks {side!r}",
                reason="section_json",
            )
        if recorded.get("cardinality") != relation.cardinality:
            raise SnapshotMismatchError(
                f"{side} cardinality {relation.cardinality} != "
                f"snapshot's {recorded.get('cardinality')}",
                reason="fingerprint_mismatch",
            )
        if recorded.get("endpoint_crc") != relation_endpoint_digest(
            relation
        ):
            raise SnapshotMismatchError(
                f"{side} endpoint digest mismatch — the snapshot was "
                "built from a different relation",
                reason="fingerprint_mismatch",
            )
        content_crc = recorded.get("content_crc")
        if content_crc is not None and content_crc != _content_digest(
            relation
        ):
            # No stability precheck needed: an unstable payload type in
            # the caller's relation cannot reproduce the digest a
            # stable-typed save recorded.
            raise SnapshotMismatchError(
                f"{side} payload digest mismatch",
                reason="fingerprint_mismatch",
            )


def _validate_directory(
    directory: array, k: int, side: str
) -> None:
    """A directory replays cleanly iff every entry takes exactly one of
    Algorithm 1's two head-insert branches."""
    head_i = head_j = None
    for at in range(0, len(directory), 3):
        i, j, count = directory[at], directory[at + 1], directory[at + 2]
        if not (0 <= i <= j < k) or count < 1:
            raise SnapshotFormatError(
                f"{side} directory entry ({i}, {j}, {count}) is not a "
                f"valid partition of a k={k} grid",
                reason="inconsistent",
            )
        new_main = head_j is None or head_j < j
        new_branch = head_j == j and head_i is not None and head_i > i
        if not (new_main or new_branch):
            raise SnapshotFormatError(
                f"{side} directory is not in creation order at "
                f"({i}, {j})",
                reason="inconsistent",
            )
        head_i, head_j = i, j


def _decode_side(
    sections: Dict[str, bytes],
    side: str,
    meta: Dict[str, Any],
    stats: Dict[str, Any],
    relation: Any,
) -> Tuple[array, array, Optional[array]]:
    """Decode and *fully* validate one side's columns before any block
    is materialised — restore must be infallible so a degrade can never
    leave half an index charged to the caller's counters."""
    byteorder = meta["byteorder"]
    directory = _array_section(sections, f"dir_{side}", byteorder)
    positions = _array_section(sections, f"pos_{side}", byteorder)
    blocks_name = f"blocks_{side}"
    checksums = (
        _array_section(sections, blocks_name, byteorder)
        if blocks_name in sections
        else None
    )
    if len(directory) % 3:
        raise SnapshotFormatError(
            f"{side} directory length {len(directory)} is not a "
            "multiple of 3",
            reason="inconsistent",
        )
    cardinality = relation.cardinality
    counts = directory[2::3]
    if sum(counts) != cardinality or len(positions) != cardinality:
        raise SnapshotFormatError(
            f"{side} directory covers {sum(counts)} tuples and "
            f"positions {len(positions)}; relation has {cardinality}",
            reason="inconsistent",
        )
    if positions and (min(positions) < 0 or max(positions) >= cardinality):
        raise SnapshotFormatError(
            f"{side} positions exceed the relation", reason="inconsistent"
        )
    _validate_directory(directory, meta[f"k_{side}"], side)
    if checksums is not None:
        tuples_per_block = meta["tuples_per_block"]
        expected_blocks = sum(
            -(-count // tuples_per_block) for count in counts
        )
        if len(checksums) != expected_blocks:
            raise SnapshotFormatError(
                f"{side} stores {len(checksums)} block checksums; the "
                f"directory implies {expected_blocks}",
                reason="inconsistent",
            )
    side_stats = stats.get(side) if isinstance(stats, dict) else None
    if isinstance(side_stats, dict):
        recorded = side_stats.get("partitions")
        if recorded is not None and recorded != len(directory) // 3:
            raise SnapshotFormatError(
                f"{side} statistics claim {recorded} partitions; the "
                f"directory holds {len(directory) // 3}",
                reason="inconsistent",
            )
    return directory, positions, checksums


def _restore_side(
    relation: Any,
    config: Any,
    directory: array,
    positions: array,
    checksums: Optional[array],
    storage: Any,
) -> Any:
    """Replay the creation-order directory through Algorithm 1's two
    head-insert branches, pointing the runs at the caller's own tuple
    objects — the loaded list is pointer-compatible with a rebuild."""
    from ..core.lazy_list import LazyPartitionList, PartitionNode

    partition_list = LazyPartitionList(config, storage)
    restore_run = storage.restore_run
    tuples_per_block = storage.device.tuples_per_block
    # One C-speed gather for the whole side; each run then takes a list
    # slice — cheaper than a per-run map over an array slice.
    gathered = list(map(relation.tuples.__getitem__, positions))
    cursor = 0
    block_index = 0
    for at in range(0, len(directory), 3):
        i, j, count = directory[at], directory[at + 1], directory[at + 2]
        head = partition_list.head
        node = PartitionNode(i, j, storage.new_run())
        if head is None or head.j < j:
            node.down = head
        else:  # validated: head.i > i, same j — the branch insert
            node.down = head.down
            node.right = head
        partition_list.head = node
        run_tuples = gathered[cursor : cursor + count]
        cursor += count
        if checksums is not None:
            blocks = -(-count // tuples_per_block)
            restore_run(
                node.run,
                run_tuples,
                checksums[block_index : block_index + blocks],
            )
            block_index += blocks
        else:
            restore_run(node.run, run_tuples, None)
    return partition_list


@dataclass
class ParsedSnapshot:
    """A snapshot container parsed (section table and CRCs verified)
    into memory, split from restoration.

    Parsing touches only the file; restoration touches only the parsed
    bytes.  A long-lived service uses the split to *pin* one
    generation's sections in memory and keep restoring partition lists
    from them — bit-identically to :func:`load_index` — while the file
    on disk is atomically replaced by the next generation.
    """

    path: str
    sections: Dict[str, bytes]
    meta: Dict[str, Any]
    stats: Any
    fingerprints: Any

    @classmethod
    def read(cls, path: str) -> "ParsedSnapshot":
        """Parse the snapshot at *path* (shared advisory lock)."""
        with advisory_lock(path, exclusive=False):
            blob = _read_snapshot_bytes(path)
        return cls.parse(path, blob)

    @classmethod
    def parse(cls, path: str, blob: bytes) -> "ParsedSnapshot":
        """Parse an already-read container blob."""
        sections = _parse_sections(blob)
        meta = _require_meta(sections)
        return cls(
            path=path,
            sections=sections,
            meta=meta,
            stats=_json_section(sections, "stats"),
            fingerprints=_json_section(sections, "fingerprints"),
        )

    @property
    def generation(self) -> int:
        return int(self.meta["generation"])

    @property
    def payloads_stored(self) -> bool:
        return bool(self.meta.get("payloads_stored"))

    def reconstruct_side(self, side: str) -> List[Any]:
        """Rebuild one side's tuples in *relation order* from the
        columnar sections alone (requires stored payloads) — how
        :class:`MaintainedIndex` and the query service obtain relations
        without the original workload in hand."""
        from ..core.relation import TemporalTuple

        byteorder = self.meta["byteorder"]
        sections = self.sections
        positions = _array_section(sections, f"pos_{side}", byteorder)
        starts = _array_section(sections, f"starts_{side}", byteorder)
        ends = _array_section(sections, f"ends_{side}", byteorder)
        payloads = _json_section(sections, f"payloads_{side}")
        count = len(positions)
        if not (
            len(starts) == len(ends) == count
            and isinstance(payloads, list)
            and len(payloads) == count
        ):
            raise SnapshotFormatError(
                f"{side} column lengths disagree", reason="inconsistent"
            )
        relation_order: List[Any] = [None] * count
        for at in range(count):
            position = positions[at]
            if not 0 <= position < count or (
                relation_order[position] is not None
            ):
                raise SnapshotFormatError(
                    f"{side} positions are not a permutation",
                    reason="inconsistent",
                )
            # starts/ends/positions are creation-order columns; the
            # payload list is stored in relation order.
            relation_order[position] = TemporalTuple(
                starts[at], ends[at], payloads[position]
            )
        return relation_order

    def reconstruct_relations(self) -> Tuple[Any, Any]:
        """Rebuild both source relations from the snapshot's columns.

        Raises :class:`SnapshotError` (``reason="no_payloads"``) for
        snapshots saved without stored payloads — without them the
        original tuples cannot be reproduced.
        """
        from ..core.relation import TemporalRelation

        if not self.payloads_stored:
            raise SnapshotError(
                "relation reconstruction requires a snapshot saved with "
                "stored payloads (store_payloads=True and JSON-stable "
                "payloads)",
                reason="no_payloads",
            )
        relations = []
        for side in _SIDES:
            relations.append(
                TemporalRelation(
                    self.reconstruct_side(side),
                    name=str(self.meta.get(f"{side}_name", side)),
                )
            )
        return tuple(relations)

    def restore(
        self,
        outer: Any,
        inner: Any,
        *,
        storage: Any,
        expected: Optional[Dict[str, Any]] = None,
    ) -> LoadedIndex:
        """Restore both partition lists from the parsed sections into
        *storage*, indexing into the caller's relations.

        Raises :class:`SnapshotError` (with a stable ``reason`` slug)
        when the snapshot was built under a different configuration or
        from different relations — the caller degrades to an in-memory
        rebuild.  All validation happens before the first block is
        materialised, so a failed restore leaves *storage* untouched.
        """
        from ..core.oip import OIPConfiguration

        sections, meta, stats = self.sections, self.meta, self.stats
        if expected is not None:
            _check_expected(meta, expected)
        _check_fingerprints(self.fingerprints, outer, inner)

        configs = {}
        decoded = {}
        for side, relation in (("outer", outer), ("inner", inner)):
            recorded = meta[f"config_{side}"]
            try:
                config = OIPConfiguration(
                    k=recorded["k"], d=recorded["d"], o=recorded["o"]
                )
            except (TypeError, KeyError, ValueError) as error:
                raise SnapshotFormatError(
                    f"invalid {side} configuration: {error}",
                    reason="section_json",
                ) from None
            if config != OIPConfiguration.for_relation(
                relation, meta[f"k_{side}"]
            ):
                raise SnapshotMismatchError(
                    f"{side} configuration {recorded} does not match the "
                    "relation's time range",
                    reason="config_mismatch",
                )
            configs[side] = config
            decoded[side] = _decode_side(
                sections, side, meta, stats, relation
            )

        # Build order (outer first) matches oip_create's, so block ids —
        # and therefore the whole downstream fault/cost schedule — line
        # up.
        outer_list = _restore_side(
            outer, configs["outer"], *decoded["outer"], storage
        )
        inner_list = _restore_side(
            inner, configs["inner"], *decoded["inner"], storage
        )
        return LoadedIndex(
            path=self.path,
            generation=self.generation,
            k_outer=int(meta["k_outer"]),
            k_inner=int(meta["k_inner"]),
            outer_list=outer_list,
            inner_list=inner_list,
            meta=meta,
            stats=stats,
        )


def load_index(
    path: str,
    outer: Any,
    inner: Any,
    *,
    storage: Any,
    expected: Optional[Dict[str, Any]] = None,
) -> LoadedIndex:
    """Restore both partition lists from the snapshot at *path*.

    Raises :class:`SnapshotError` (with a stable ``reason`` slug) when
    the snapshot is missing, corrupt, from a different format version,
    built under a different configuration, or built from different
    relations — the caller degrades to an in-memory rebuild.  All
    validation happens before the first block is materialised, so a
    failed load leaves *storage* untouched.
    """
    return ParsedSnapshot.read(path).restore(
        outer, inner, storage=storage, expected=expected
    )


def read_statistics(path: str) -> Dict[str, Any]:
    """Read only the ``meta`` and ``stats`` sections (CRC-checked) —
    what the planner needs, without touching the array sections."""
    with advisory_lock(path, exclusive=False):
        try:
            with open(path, "rb") as handle:
                total_size = os.fstat(handle.fileno()).st_size
                prefix = handle.read(_HEADER.size)
                if len(prefix) == _HEADER.size:
                    _, _, count = _HEADER.unpack(prefix)
                    prefix += handle.read(
                        _SECTION.size * min(count, _MAX_SECTIONS)
                    )
                entries = _parse_section_table(prefix, total_size)
                wanted: Dict[str, bytes] = {}
                for name, offset, length, crc in entries:
                    if name not in ("meta", "stats"):
                        continue
                    handle.seek(offset)
                    payload = handle.read(length)
                    if len(payload) != length or zlib.crc32(payload) != crc:
                        raise SnapshotFormatError(
                            f"checksum mismatch in section {name!r}",
                            reason="section_crc",
                        )
                    wanted[name] = payload
        except FileNotFoundError:
            raise SnapshotError(
                f"no snapshot at {path!r}", reason="missing"
            ) from None
        except OSError as error:
            raise SnapshotError(
                f"unreadable snapshot {path!r}: {error}",
                reason="unreadable",
            ) from None
    meta = _require_meta(wanted)
    return {"meta": meta, "stats": _json_section(wanted, "stats")}


# ----------------------------------------------------------------------
# Maintenance journal
# ----------------------------------------------------------------------


@dataclass
class JournalState:
    """What a scan of the journal found (``fsck`` verdict material)."""

    path: str
    exists: bool = False
    header_ok: bool = False
    generation: Optional[int] = None
    records: List[Dict[str, Any]] = field(default_factory=list)
    #: Byte offset of each record's frame within the file (parallel to
    #: ``records``) — how a replay failure names the offending record.
    offsets: List[int] = field(default_factory=list)
    #: Byte length of the valid prefix — truncating here repairs a torn
    #: tail.
    good_length: int = 0
    torn: bool = False


class MaintenanceJournal:
    """Append-only CRC-framed record log tied to a snapshot generation.

    Layout: a fixed header (magic b"OIPJ", version, base generation,
    header CRC) followed by frames of ``"<II"`` (payload length, payload
    CRC32) + a JSON record.  Appends are fsynced, so an acknowledged
    delta survives a crash; a torn tail stops replay at the last whole
    frame and is truncated by :func:`fsck_index`.
    """

    def __init__(
        self,
        path: str,
        *,
        fsync: bool = True,
        write_faults: Optional[WriteFaultPolicy] = None,
    ) -> None:
        self.path = path
        self.fsync = fsync
        self.write_faults = write_faults
        self._commit = 0

    @classmethod
    def for_index(cls, index_path: str, **kwargs: Any) -> "MaintenanceJournal":
        return cls(journal_path(index_path), **kwargs)

    def _next_commit(self) -> int:
        commit = self._commit
        self._commit += 1
        return commit

    def reset(self, generation: int) -> None:
        """Atomically replace the journal with an empty one based on
        *generation* (called right after a snapshot commit)."""
        header = _JOURNAL_HEADER.pack(
            JOURNAL_MAGIC,
            JOURNAL_VERSION,
            generation,
            zlib.crc32(struct.pack("<II", JOURNAL_VERSION, generation)),
        )
        atomic_commit(
            self.path,
            header,
            write_faults=self.write_faults,
            commit=self._next_commit(),
            fsync=self.fsync,
        )

    def append(self, record: Dict[str, Any]) -> None:
        """Durably append one maintenance record.

        The write-fault hooks apply: a torn write (or a dropped fsync —
        equivalent for an append) leaves a partial final frame and
        raises :class:`SimulatedCrashError`; a bit-flip silently
        corrupts the frame for replay's CRC to catch.
        """
        payload = _json_bytes(record)
        frame = _FRAME.pack(len(payload), zlib.crc32(payload)) + payload
        fault = WriteFault(WriteFaultKind.OK)
        if self.write_faults is not None:
            fault = self.write_faults.decide_commit(
                os.path.basename(self.path),
                len(frame),
                self._next_commit(),
            )
        if fault.kind is WriteFaultKind.BIT_FLIP:
            corrupted = bytearray(frame)
            offset = min(fault.offset or 0, len(corrupted) - 1)
            corrupted[offset] ^= 1 << (offset % 8)
            frame = bytes(corrupted)
        with open(self.path, "ab") as handle:
            if fault.kind in (
                WriteFaultKind.TORN_WRITE,
                WriteFaultKind.DROPPED_FSYNC,
            ):
                offset = min(fault.offset or 0, len(frame))
                handle.write(frame[:offset])
                handle.flush()
                os.fsync(handle.fileno())
                raise SimulatedCrashError(self.path, "journal-append", offset)
            handle.write(frame)
            handle.flush()
            if self.fsync:
                os.fsync(handle.fileno())

    def scan(self) -> JournalState:
        """Walk the journal: header, then frames up to the first torn
        or corrupt one.  Never mutates the file."""
        state = JournalState(path=self.path)
        try:
            with open(self.path, "rb") as handle:
                blob = handle.read()
        except FileNotFoundError:
            return state
        except OSError:
            return state
        state.exists = True
        if len(blob) < _JOURNAL_HEADER.size:
            return state
        magic, version, generation, crc = _JOURNAL_HEADER.unpack_from(blob)
        if magic != JOURNAL_MAGIC or version != JOURNAL_VERSION:
            return state
        if crc != zlib.crc32(struct.pack("<II", version, generation)):
            return state
        state.header_ok = True
        state.generation = generation
        cursor = _JOURNAL_HEADER.size
        while cursor < len(blob):
            if cursor + _FRAME.size > len(blob):
                state.torn = True
                break
            length, frame_crc = _FRAME.unpack_from(blob, cursor)
            start = cursor + _FRAME.size
            if start + length > len(blob):
                state.torn = True
                break
            payload = blob[start : start + length]
            if zlib.crc32(payload) != frame_crc:
                state.torn = True
                break
            try:
                record = json.loads(payload.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError):
                state.torn = True
                break
            state.records.append(record)
            state.offsets.append(cursor)
            cursor = start + length
        state.good_length = cursor if state.torn else len(blob)
        return state

    def truncate_tail(self, good_length: int) -> None:
        """Drop a torn tail (the fsck repair)."""
        os.truncate(self.path, good_length)


# ----------------------------------------------------------------------
# Maintained index: snapshot + journaled incremental deltas
# ----------------------------------------------------------------------


class MaintainedIndex:
    """A persisted OIP index that accepts journaled insert/delete deltas.

    Deltas go journal-first (a crash after the fsync replays them, a
    crash during it loses only the unacknowledged record), are applied
    to per-side :class:`~repro.core.incremental.IncrementalOIP`
    structures, and become join-visible when :meth:`compact` folds them
    into a fresh snapshot generation and resets the journal — the
    snapshot commit is the linearization point.

    Requires a snapshot saved with ``store_payloads=True`` (stable
    payloads), because maintenance reconstructs tuples without the
    original relation.
    """

    def __init__(
        self,
        path: str,
        *,
        device: Any,
        meta: Dict[str, Any],
        tuples: Dict[str, List[Any]],
        incremental: Dict[str, Any],
        journal: MaintenanceJournal,
        pending: int,
    ) -> None:
        self.path = path
        self._device = device
        self._meta = meta
        self._tuples = tuples
        self._incremental = incremental
        self._journal = journal
        self._pending = pending

    # -- construction --------------------------------------------------------

    @classmethod
    def open(
        cls,
        path: str,
        *,
        device: Any = None,
        fsync: bool = True,
        write_faults: Optional[WriteFaultPolicy] = None,
    ) -> "MaintainedIndex":
        """Load the snapshot, reconcile the journal, replay deltas.

        A journal that is missing, unreadable, or based on a different
        generation than the snapshot is *stale* and is atomically reset
        (the snapshot is authoritative); a torn tail is replayed up to
        the last whole frame and left for :func:`fsck_index` to trim.
        """
        from ..core.incremental import IncrementalOIP
        from ..core.oip import OIPConfiguration
        from .device import DeviceProfile

        if device is None:
            device = DeviceProfile.main_memory()
        with advisory_lock(path, exclusive=True):
            blob = _read_snapshot_bytes(path)
        parsed = ParsedSnapshot.parse(path, blob)
        meta = parsed.meta
        if not parsed.payloads_stored:
            raise SnapshotError(
                "maintenance requires a snapshot saved with stored "
                "payloads (store_payloads=True and JSON-stable payloads)",
                reason="no_payloads",
            )
        if device.tuples_per_block != meta["tuples_per_block"]:
            raise SnapshotMismatchError(
                f"device packs {device.tuples_per_block} tuples per "
                f"block; the snapshot used {meta['tuples_per_block']}",
                reason="config_mismatch",
            )
        tuples: Dict[str, List[Any]] = {}
        incremental: Dict[str, Any] = {}
        for side in _SIDES:
            relation_order = parsed.reconstruct_side(side)
            recorded = meta[f"config_{side}"]
            structure = IncrementalOIP(
                OIPConfiguration(
                    k=recorded["k"], d=recorded["d"], o=recorded["o"]
                )
            )
            for tup in relation_order:
                structure.insert(tup)
            tuples[side] = relation_order
            incremental[side] = structure

        journal = MaintenanceJournal.for_index(
            path, fsync=fsync, write_faults=write_faults
        )
        state = journal.scan()
        generation = int(meta["generation"])
        if not state.exists or not state.header_ok or (
            state.generation != generation
        ):
            # Stale or damaged journal: the snapshot is authoritative.
            journal.reset(generation)
            state = JournalState(
                path=journal.path,
                exists=True,
                header_ok=True,
                generation=generation,
            )
        index = cls(
            path,
            device=device,
            meta=meta,
            tuples=tuples,
            incremental=incremental,
            journal=journal,
            pending=0,
        )
        for position, record in enumerate(state.records):
            try:
                index._apply(record)
            except (SnapshotError, KeyError, TypeError, ValueError) as error:
                # A CRC-valid frame whose *content* cannot be applied.
                # Name the exact record and its byte offset: replay must
                # never half-apply a journal and leave the operator
                # guessing which delta is poisoned.
                offset = (
                    state.offsets[position]
                    if position < len(state.offsets)
                    else None
                )
                raise JournalReplayError(
                    f"cannot replay journal record {position} at byte "
                    f"offset {offset} of {journal.path!r}: {error}",
                    record_index=position,
                    offset=offset,
                    path=journal.path,
                ) from error
            index._pending += 1
        return index

    # -- views ---------------------------------------------------------------

    @property
    def generation(self) -> int:
        return int(self._meta["generation"])

    @property
    def pending(self) -> int:
        """Journal records not yet folded into a snapshot."""
        return self._pending

    def cardinality(self, side: str) -> int:
        return len(self._tuples[self._side(side)])

    def relation(self, side: str) -> Any:
        from ..core.relation import TemporalRelation

        side = self._side(side)
        return TemporalRelation(
            list(self._tuples[side]),
            name=str(self._meta.get(f"{side}_name", side)),
        )

    def relations(self) -> Tuple[Any, Any]:
        return self.relation("outer"), self.relation("inner")

    def check_invariants(self) -> None:
        for structure in self._incremental.values():
            structure.check_invariants()

    # -- maintenance ---------------------------------------------------------

    @staticmethod
    def _side(side: str) -> str:
        if side not in _SIDES:
            raise ValueError(f"side must be one of {_SIDES}, got {side!r}")
        return side

    def _apply(self, record: Dict[str, Any]) -> bool:
        from ..core.relation import TemporalTuple

        side = self._side(str(record["side"]))
        tup = TemporalTuple(
            record["start"], record["end"], record.get("payload")
        )
        if record["op"] == "insert":
            self._incremental[side].insert(tup)
            self._tuples[side].append(tup)
            return True
        if record["op"] == "delete":
            if self._incremental[side].delete(tup):
                self._tuples[side].remove(tup)
                return True
            return False
        raise SnapshotFormatError(
            f"unknown journal op {record['op']!r}", reason="inconsistent"
        )

    def insert(
        self, side: str, start: int, end: int, payload: Any = None
    ) -> Tuple[int, int]:
        """Journal, then apply, one insertion; returns the logical
        ``(i, j)`` partition the tuple landed in."""
        from ..core.relation import TemporalTuple

        side = self._side(side)
        if type(payload) not in _STABLE_PAYLOAD_TYPES:
            raise ValueError(
                f"maintained payloads must be JSON-stable scalars, got "
                f"{type(payload).__name__}"
            )
        tup = TemporalTuple(start, end, payload)
        self._journal.append(
            {
                "op": "insert",
                "side": side,
                "start": tup.start,
                "end": tup.end,
                "payload": tup.payload,
            }
        )
        key = self._incremental[side].insert(tup)
        self._tuples[side].append(tup)
        self._pending += 1
        return key

    def delete(
        self, side: str, start: int, end: int, payload: Any = None
    ) -> bool:
        """Journal, then apply, one deletion; ``False`` when no equal
        tuple exists (nothing is journaled in that case)."""
        from ..core.relation import TemporalTuple

        side = self._side(side)
        tup = TemporalTuple(start, end, payload)
        if tup not in self._tuples[side]:
            return False
        self._journal.append(
            {
                "op": "delete",
                "side": side,
                "start": tup.start,
                "end": tup.end,
                "payload": tup.payload,
            }
        )
        self._incremental[side].delete(tup)
        self._tuples[side].remove(tup)
        self._pending += 1
        return True

    def compact(self, *, cancellation: Any = None) -> Dict[str, Any]:
        """Fold the journaled deltas into a fresh snapshot generation
        and reset the journal.  Crash before the snapshot rename: the
        old generation + journal still replay.  Crash after it but
        before the reset: the journal is stale (older base generation)
        and is discarded on the next open."""
        meta = self._meta
        kwargs: Dict[str, Any] = {}
        if meta["k_mode"] == "fixed":
            kwargs["k"] = meta["pinned_k"]
        elif meta["k_mode"] == "per_side":
            kwargs["k_outer"] = meta["pinned_k_outer"]
            kwargs["k_inner"] = meta["pinned_k_inner"]
        outer, inner = self.relations()
        info = save_index(
            self.path,
            outer,
            inner,
            device=self._device,
            use_exact_root=bool(meta.get("use_exact_root", True)),
            use_histogram_statistics=bool(
                meta.get("use_histogram_statistics", False)
            ),
            store_payloads=True,
            generation=self.generation + 1,
            write_faults=self._journal.write_faults,
            cancellation=cancellation,
            fsync=self._journal.fsync,
            **kwargs,
        )
        self._journal.reset(info["generation"])
        self._meta = dict(meta, generation=info["generation"])
        self._pending = 0
        return info


# ----------------------------------------------------------------------
# fsck
# ----------------------------------------------------------------------

#: Problems that do not prevent loading the snapshot itself (they
#: concern satellites of the snapshot, all repairable).
_NON_FATAL_PROBLEMS = frozenset(
    (
        "stale_tmp",
        "journal_header",
        "journal_stale",
        "journal_torn_tail",
        "trailing_bytes",
    )
)


def _fsck_deep_side(
    sections: Dict[str, bytes],
    side: str,
    meta: Dict[str, Any],
    fingerprints: Dict[str, Any],
    problems: List[str],
) -> None:
    """Cross-validate one side's columns against the stored
    configuration — the directory/statistics consistency pass."""
    byteorder = meta["byteorder"]
    try:
        directory = _array_section(sections, f"dir_{side}", byteorder)
        positions = _array_section(sections, f"pos_{side}", byteorder)
        starts = _array_section(sections, f"starts_{side}", byteorder)
        ends = _array_section(sections, f"ends_{side}", byteorder)
    except SnapshotError as error:
        problems.append(error.reason)
        return
    if len(directory) % 3:
        problems.append("inconsistent")
        return
    counts = directory[2::3]
    recorded = fingerprints.get(side, {})
    cardinality = recorded.get("cardinality")
    if not (
        sum(counts)
        == len(positions)
        == len(starts)
        == len(ends)
        == cardinality
    ):
        problems.append("inconsistent")
        return
    if positions and (
        min(positions) < 0 or max(positions) >= cardinality
    ):
        problems.append("inconsistent")
        return
    try:
        _validate_directory(directory, meta[f"k_{side}"], side)
    except SnapshotError as error:
        problems.append(error.reason)
        return
    config = meta[f"config_{side}"]
    d, origin = config["d"], config["o"]
    cursor = 0
    for at in range(0, len(directory), 3):
        i, j, count = directory[at], directory[at + 1], directory[at + 2]
        for position in range(cursor, cursor + count):
            if (
                (starts[position] - origin) // d != i
                or (ends[position] - origin) // d != j
            ):
                problems.append("inconsistent")
                return
        cursor += count


def fsck_index(
    path: str, *, repair: bool = True, deep: bool = True
) -> Dict[str, Any]:
    """Validate the snapshot + journal at *path*; optionally repair.

    Repairs are limited to satellites of the immutable snapshot blob:
    removing a stale ``*.tmp``, truncating a torn journal tail, and
    resetting a stale/corrupt journal.  A damaged snapshot body is
    *reported* (``loadable: false``) — recovery from that is the join's
    degrade-to-rebuild path, not a rewrite.

    Returns a machine-readable verdict dict (also what ``python -m
    repro fsck`` prints with ``--json``).
    """
    verdict: Dict[str, Any] = {
        "path": path,
        "exists": False,
        "loadable": False,
        "generation": None,
        "problems": [],
        "repairs": [],
        "sections": [],
        "stats": None,
        "journal": {"path": journal_path(path), "present": False},
    }
    problems: List[str] = verdict["problems"]
    repairs: List[str] = verdict["repairs"]

    staging = tmp_path(path)
    if os.path.exists(staging):
        problems.append("stale_tmp")
        if repair:
            try:
                os.unlink(staging)
                repairs.append("removed_tmp")
            except OSError:  # pragma: no cover - racing unlink
                pass

    meta: Optional[Dict[str, Any]] = None
    try:
        blob = _read_snapshot_bytes(path)
        verdict["exists"] = True
        sections = _parse_sections(blob)
        verdict["sections"] = sorted(sections)
        meta = _require_meta(sections)
        stats = _json_section(sections, "stats")
        fingerprints = _json_section(sections, "fingerprints")
        verdict["generation"] = int(meta["generation"])
        verdict["stats"] = stats
        # The commit is a single contiguous blob, so bytes past the
        # last section are never written by this code — flag (and, on
        # request, trim) whatever appended them.
        expected_size = max(
            offset + length
            for _, offset, length, _ in _parse_section_table(blob)
        )
        if len(blob) > expected_size:
            problems.append("trailing_bytes")
            if repair:
                with open(path, "r+b") as handle:
                    handle.truncate(expected_size)
                repairs.append("truncated_trailing_bytes")
        if deep:
            for side in _SIDES:
                _fsck_deep_side(
                    sections, side, meta, fingerprints, problems
                )
    except SnapshotError as error:
        if error.reason != "missing":
            verdict["exists"] = True
        problems.append(error.reason)

    journal = MaintenanceJournal(journal_path(path))
    state = journal.scan()
    journal_verdict: Dict[str, Any] = {
        "path": journal.path,
        "present": state.exists,
        "header_ok": state.header_ok,
        "generation": state.generation,
        "records": len(state.records),
        "torn": state.torn,
    }
    verdict["journal"] = journal_verdict
    if state.exists:
        if not state.header_ok:
            problems.append("journal_header")
            if repair and meta is not None:
                journal.reset(int(meta["generation"]))
                repairs.append("reset_journal")
        elif meta is not None and state.generation != int(
            meta["generation"]
        ):
            problems.append("journal_stale")
            if repair:
                journal.reset(int(meta["generation"]))
                repairs.append("reset_journal")
        elif state.torn:
            problems.append("journal_torn_tail")
            if repair:
                journal.truncate_tail(state.good_length)
                journal_verdict["records"] = len(state.records)
                repairs.append("truncated_journal_tail")

    fatal = [
        problem
        for problem in problems
        if problem not in _NON_FATAL_PROBLEMS
    ]
    repairable = [
        problem for problem in problems if problem in _NON_FATAL_PROBLEMS
    ]
    verdict["loadable"] = verdict["exists"] and not fatal
    # "ok": loadable with no repairable problem left unrepaired.
    verdict["ok"] = verdict["loadable"] and (
        len(repairs) >= len(repairable)
    )
    return verdict
