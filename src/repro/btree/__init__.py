"""B+-tree substrate used by the relational interval tree baseline."""

from .tree import BPlusTree

__all__ = ["BPlusTree"]
