"""A B+-tree over ordered keys.

Substrate for the Relational Interval Tree baseline, which indexes
``(fork_node, start)`` and ``(fork_node, end)`` composite keys in two
B+-trees (Kriegel et al., "Managing intervals efficiently in
object-relational databases").  The tree supports duplicate keys (every
key maps to a list of values), point lookup and half-open range scans —
the operations the RI-tree query algorithm needs.

The implementation is a classic order-``m`` B+-tree: internal nodes hold
separator keys and children, leaves hold sorted key/value-list pairs and
are chained left-to-right for range scans.  An optional
:class:`~repro.storage.metrics.CostCounters` records one node access per
visited node and one CPU comparison per key comparison, so index
navigation shows up in the measured join costs exactly as the paper
describes ("a high number of operations on the indices").
"""

from __future__ import annotations

import bisect
from typing import Any, Iterator, List, Optional, Tuple

from ..storage.metrics import CostCounters

__all__ = ["BPlusTree"]


class _Node:
    __slots__ = ("keys", "children", "values", "next_leaf", "is_leaf")

    def __init__(self, is_leaf: bool) -> None:
        self.is_leaf = is_leaf
        self.keys: List[Any] = []
        # Internal nodes: children[i] subtree holds keys < keys[i].
        self.children: List["_Node"] = []
        # Leaves: values[i] is the list of values stored under keys[i].
        self.values: List[List[Any]] = []
        self.next_leaf: Optional["_Node"] = None


class BPlusTree:
    """Order-``m`` B+-tree with duplicate support and leaf chaining."""

    def __init__(
        self,
        order: int = 32,
        counters: Optional[CostCounters] = None,
    ) -> None:
        if order < 3:
            raise ValueError(f"B+-tree order must be >= 3, got {order}")
        self.order = order
        self.counters = counters
        self._root = _Node(is_leaf=True)
        self._size = 0

    # -- bookkeeping ------------------------------------------------------------

    def __len__(self) -> int:
        """Number of stored values (not distinct keys)."""
        return self._size

    @property
    def height(self) -> int:
        """Number of levels from root to leaves (1 for a leaf-only tree)."""
        height = 1
        node = self._root
        while not node.is_leaf:
            node = node.children[0]
            height += 1
        return height

    def _charge_node(self) -> None:
        if self.counters is not None:
            self.counters.charge_partition_access()

    def _charge_cpu(self, count: int = 1) -> None:
        if self.counters is not None:
            self.counters.charge_cpu(count)

    def _position(self, node: _Node, key: Any) -> int:
        """Index of *key* in ``node.keys`` via binary search; charges the
        comparisons the search performs."""
        position = bisect.bisect_left(node.keys, key)
        self._charge_cpu(max(1, len(node.keys).bit_length()))
        return position

    # -- insertion --------------------------------------------------------------

    def insert(self, key: Any, value: Any) -> None:
        """Insert *value* under *key*; duplicates accumulate in order."""
        split = self._insert(self._root, key, value)
        if split is not None:
            separator, right = split
            new_root = _Node(is_leaf=False)
            new_root.keys = [separator]
            new_root.children = [self._root, right]
            self._root = new_root
        self._size += 1

    def _insert(
        self, node: _Node, key: Any, value: Any
    ) -> Optional[Tuple[Any, _Node]]:
        if node.is_leaf:
            position = self._position(node, key)
            if position < len(node.keys) and node.keys[position] == key:
                node.values[position].append(value)
            else:
                node.keys.insert(position, key)
                node.values.insert(position, [value])
            if len(node.keys) > self.order:
                return self._split_leaf(node)
            return None

        position = bisect.bisect_right(node.keys, key)
        self._charge_cpu(max(1, len(node.keys).bit_length()))
        split = self._insert(node.children[position], key, value)
        if split is None:
            return None
        separator, right = split
        node.keys.insert(position, separator)
        node.children.insert(position + 1, right)
        if len(node.keys) > self.order:
            return self._split_internal(node)
        return None

    def _split_leaf(self, node: _Node) -> Tuple[Any, _Node]:
        middle = len(node.keys) // 2
        right = _Node(is_leaf=True)
        right.keys = node.keys[middle:]
        right.values = node.values[middle:]
        node.keys = node.keys[:middle]
        node.values = node.values[:middle]
        right.next_leaf = node.next_leaf
        node.next_leaf = right
        return right.keys[0], right

    def _split_internal(self, node: _Node) -> Tuple[Any, _Node]:
        middle = len(node.keys) // 2
        separator = node.keys[middle]
        right = _Node(is_leaf=False)
        right.keys = node.keys[middle + 1 :]
        right.children = node.children[middle + 1 :]
        node.keys = node.keys[:middle]
        node.children = node.children[: middle + 1]
        return separator, right

    # -- lookup --------------------------------------------------------------------

    def _descend_to_leaf(self, key: Any) -> _Node:
        node = self._root
        self._charge_node()
        while not node.is_leaf:
            position = bisect.bisect_right(node.keys, key)
            self._charge_cpu(max(1, len(node.keys).bit_length()))
            node = node.children[position]
            self._charge_node()
        return node

    def search(self, key: Any) -> List[Any]:
        """All values stored under exactly *key* (empty list if absent)."""
        leaf = self._descend_to_leaf(key)
        position = self._position(leaf, key)
        if position < len(leaf.keys) and leaf.keys[position] == key:
            return list(leaf.values[position])
        return []

    def range_scan(
        self,
        low: Any,
        high: Any,
        include_low: bool = True,
        include_high: bool = True,
    ) -> Iterator[Tuple[Any, Any]]:
        """Yield ``(key, value)`` for keys between *low* and *high*.

        Keys are visited in ascending order by following the leaf chain;
        each yielded key stays within the requested bounds.
        """
        leaf: Optional[_Node] = self._descend_to_leaf(low)
        position = self._position(leaf, low)
        while leaf is not None:
            while position < len(leaf.keys):
                key = leaf.keys[position]
                self._charge_cpu()
                if key > high or (key == high and not include_high):
                    return
                if key > low or (key == low and include_low):
                    for value in leaf.values[position]:
                        yield key, value
                position += 1
            leaf = leaf.next_leaf
            position = 0
            if leaf is not None:
                self._charge_node()

    def items(self) -> Iterator[Tuple[Any, Any]]:
        """All ``(key, value)`` pairs in key order (no cost charged; used
        by tests and diagnostics)."""
        node = self._root
        while not node.is_leaf:
            node = node.children[0]
        leaf: Optional[_Node] = node
        while leaf is not None:
            for key, values in zip(leaf.keys, leaf.values):
                for value in values:
                    yield key, value
            leaf = leaf.next_leaf

    def keys(self) -> List[Any]:
        """All distinct keys in order."""
        seen: List[Any] = []
        node = self._root
        while not node.is_leaf:
            node = node.children[0]
        leaf: Optional[_Node] = node
        while leaf is not None:
            seen.extend(leaf.keys)
            leaf = leaf.next_leaf
        return seen

    # -- structural checks (tests) -----------------------------------------------

    def check_invariants(self) -> None:
        """Raise ``AssertionError`` when a B+-tree invariant is violated:
        sorted keys, fanout bounds, uniform leaf depth, chained leaves."""
        depths = set()

        def visit(node: _Node, depth: int, low: Any, high: Any) -> None:
            assert node.keys == sorted(node.keys), "unsorted node keys"
            for key in node.keys:
                if low is not None:
                    assert key >= low, "key below subtree bound"
                if high is not None:
                    assert key < high, "key above subtree bound"
            if node is not self._root:
                minimum = 1 if node.is_leaf else (self.order // 2) - 1
                assert len(node.keys) >= max(1, minimum), "underfull node"
            assert len(node.keys) <= self.order, "overfull node"
            if node.is_leaf:
                depths.add(depth)
                assert len(node.values) == len(node.keys)
            else:
                assert len(node.children) == len(node.keys) + 1
                bounds = [low, *node.keys, high]
                for index, child in enumerate(node.children):
                    visit(child, depth + 1, bounds[index], bounds[index + 1])

        visit(self._root, 0, None, None)
        assert len(depths) <= 1, "leaves at different depths"
        keys = self.keys()
        assert keys == sorted(keys), "leaf chain out of order"
