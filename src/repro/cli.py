"""Command-line interface: run joins, compare algorithms, derive k and
inspect datasets without writing code.

::

    python -m repro join --workload mixture --cardinality 2000 \\
        --long-fraction 0.5 --algorithm oip
    python -m repro join --algorithm oip --trace run.trace.jsonl \\
        --metrics-out run.metrics.json --report run.report.json
    python -m repro compare --workload uniform --cardinality 1500 \\
        --algorithms oip,lqt,smj
    python -m repro compare base.report.json other.report.json
    python -m repro derive-k --outer 10000000 --inner 100000000 \\
        --lambda-outer 0.0001 --lambda-inner 0.0005
    python -m repro datasets
    python -m repro save-index --workload mixture --cardinality 2000 \\
        --long-fraction 0.5 --out run.oip
    python -m repro fsck run.oip
    python -m repro join --workload mixture --cardinality 2000 \\
        --long-fraction 0.5 --index run.oip
"""

from __future__ import annotations

import argparse
import signal
import sys
import time
from typing import List, Optional, Sequence

from .baselines import ALGORITHMS
from .core.granules import JoinCostModel, derive_k
from .core.interval import Interval
from .core.relation import TemporalRelation
from .engine.governor import (
    BudgetExceededError,
    CancellationToken,
    QueryBudget,
)
from .storage.faults import FAULT_PROFILES, StorageFaultError, fault_profile
from .storage.metrics import CostWeights
from .workloads import (
    DATASET_GENERATORS,
    PAPER_DATASET_PROPERTIES,
    clustered_relation,
    dataset_properties,
    long_lived_mixture,
    point_relation,
    uniform_relation,
)

__all__ = ["main", "build_parser"]

_WORKLOADS = ("uniform", "mixture", "points", "clustered")


def _make_relation(args: argparse.Namespace, seed: int, name: str) -> TemporalRelation:
    if args.workload in DATASET_GENERATORS:
        return DATASET_GENERATORS[args.workload](
            cardinality=args.cardinality, seed=seed, name=name
        )
    time_range = Interval(1, args.time_range)
    if args.workload == "uniform":
        return uniform_relation(
            args.cardinality,
            time_range,
            args.max_duration,
            seed=seed,
            name=name,
        )
    if args.workload == "mixture":
        return long_lived_mixture(
            args.cardinality,
            args.long_fraction,
            time_range,
            seed=seed,
            name=name,
        )
    if args.workload == "points":
        return point_relation(args.cardinality, time_range, seed=seed, name=name)
    if args.workload == "clustered":
        return clustered_relation(
            args.cardinality, time_range, seed=seed, name=name
        )
    raise SystemExit(f"unknown workload {args.workload!r}")


def _add_workload_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--workload",
        default="uniform",
        choices=_WORKLOADS + tuple(DATASET_GENERATORS),
        help="synthetic family or real-dataset stand-in",
    )
    parser.add_argument(
        "--cardinality", type=int, default=1_000, help="tuples per relation"
    )
    parser.add_argument(
        "--time-range",
        type=int,
        default=2**20,
        help="number of time points (synthetic workloads)",
    )
    parser.add_argument(
        "--max-duration",
        type=float,
        default=0.001,
        help="max tuple duration as a fraction of the range (uniform)",
    )
    parser.add_argument(
        "--long-fraction",
        type=float,
        default=0.25,
        help="share of long-lived tuples (mixture)",
    )
    parser.add_argument("--seed", type=int, default=0)


def _add_parallel_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help=(
            "probe-phase workers for the oip algorithm (partition-pair "
            "scheduling; results are identical to the sequential join)"
        ),
    )
    parser.add_argument(
        "--parallel-backend",
        default="thread",
        choices=("thread", "process"),
        help="worker-pool backend used with --workers",
    )
    parser.add_argument(
        "--kernel",
        default="auto",
        choices=("auto", "naive", "sweep", "numpy"),
        help=(
            "partition-pair join kernel for the oip algorithm: 'naive' "
            "compares every candidate pair, 'sweep' forward-scans "
            "start-sorted columns, 'numpy' vectorizes the match step "
            "(falls back to 'sweep' when numpy is not installed; "
            "identical pairs and cost counters in every case); 'auto' "
            "picks from the candidate estimate"
        ),
    )


def _add_resilience_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--fault-profile",
        default="none",
        choices=("none",) + tuple(sorted(FAULT_PROFILES)),
        help=(
            "inject seeded storage faults (chaos testing); results are "
            "identical to a fault-free run as long as retries succeed"
        ),
    )
    parser.add_argument(
        "--fault-seed",
        type=int,
        default=0,
        help="seed of the deterministic fault schedule",
    )
    parser.add_argument(
        "--max-retries",
        type=int,
        default=3,
        help="block-read retries before a read is abandoned",
    )


def _add_obs_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="write a JSONL span/event trace of the run to PATH",
    )
    parser.add_argument(
        "--metrics-out",
        default=None,
        metavar="PATH",
        help="write the metrics-registry snapshot to PATH after the run",
    )
    parser.add_argument(
        "--metrics-format",
        default="json",
        choices=("json", "prometheus"),
        help="exposition format of --metrics-out (default json)",
    )
    parser.add_argument(
        "--report",
        default=None,
        metavar="PATH",
        help="write the machine-readable run report (JSON) to PATH",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help=(
            "print the run report JSON to stdout instead of the text "
            "summary (same serialization as --report)"
        ),
    )


def _obs_kwargs(args: argparse.Namespace) -> dict:
    """Observability keyword arguments from the ``--trace`` /
    ``--metrics-out`` / ``--report`` / ``--json`` flags.

    The trace sink and metrics registry are stashed on *args* so
    :func:`_run_single` can flush the artifacts after the run.  With none
    of the flags given this attaches nothing — the join runs the exact
    pre-observability code paths.
    """
    kwargs: dict = {}
    trace_path = getattr(args, "trace", None)
    metrics_out = getattr(args, "metrics_out", None)
    collect = (
        getattr(args, "report", None) is not None
        or getattr(args, "json", False)
    )
    if trace_path is not None:
        from .obs import JsonlSink, Tracer

        args._trace_sink = JsonlSink(trace_path)
        kwargs["tracer"] = Tracer(sink=args._trace_sink)
    if metrics_out is not None or collect:
        # A report is richer with a metrics section, so --report/--json
        # attach a registry even without --metrics-out.
        from .obs import MetricsRegistry

        args._metrics = MetricsRegistry()
        kwargs["metrics"] = args._metrics
    if collect:
        kwargs["collect_report"] = True
    return kwargs


def _write_obs_artifacts(args: argparse.Namespace, result) -> None:
    """Write the ``--metrics-out`` and ``--report`` files for a finished
    (completed or cancelled) run."""
    metrics = getattr(args, "_metrics", None)
    metrics_out = getattr(args, "metrics_out", None)
    if metrics is not None and metrics_out is not None:
        if getattr(args, "metrics_format", "json") == "prometheus":
            text = metrics.to_prometheus_text()
        else:
            text = metrics.to_json()
        if not text.endswith("\n"):
            text += "\n"
        with open(metrics_out, "w", encoding="utf-8") as handle:
            handle.write(text)
    report_path = getattr(args, "report", None)
    if report_path is not None and result.report is not None:
        from .obs.report import write_report

        write_report(result.report, report_path)


def _add_lifecycle_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--deadline-ms",
        type=float,
        default=None,
        help=(
            "wall-clock budget for the join; exceeded at a cooperative "
            "boundary the run aborts with its partial counters (exit 75)"
        ),
    )
    parser.add_argument(
        "--max-comparisons",
        type=int,
        default=None,
        help="logical budget: abort past this many CPU comparisons",
    )
    parser.add_argument(
        "--max-block-reads",
        type=int,
        default=None,
        help="logical budget: abort past this many block reads",
    )
    parser.add_argument(
        "--checkpoint",
        default=None,
        metavar="PATH",
        help=(
            "write a resumable JSON checkpoint here periodically and at "
            "any cancellation/budget stop (oip only)"
        ),
    )
    parser.add_argument(
        "--checkpoint-every",
        type=int,
        default=None,
        metavar="N",
        help="outer partitions between checkpoints (default 8)",
    )
    parser.add_argument(
        "--resume-from",
        default=None,
        metavar="PATH",
        help="resume an interrupted oip join from a checkpoint file",
    )


def _budget_from(args: argparse.Namespace) -> Optional[QueryBudget]:
    deadline = getattr(args, "deadline_ms", None)
    max_comparisons = getattr(args, "max_comparisons", None)
    max_block_reads = getattr(args, "max_block_reads", None)
    if deadline is None and max_comparisons is None and max_block_reads is None:
        return None
    try:
        return QueryBudget(
            deadline_ms=deadline,
            max_comparisons=max_comparisons,
            max_block_reads=max_block_reads,
        )
    except ValueError as error:
        raise SystemExit(str(error))


def _lifecycle_kwargs(name: str, args: argparse.Namespace) -> dict:
    """Governor keyword arguments for algorithm *name*.

    Cancellation (the SIGINT/SIGTERM token) applies to every algorithm;
    budgets and checkpoint/resume need the OIPJOIN's partition
    boundaries and are rejected for the baselines.
    """
    kwargs: dict = {}
    budget = _budget_from(args)
    checkpoint = getattr(args, "checkpoint", None)
    checkpoint_every = getattr(args, "checkpoint_every", None)
    resume_from = getattr(args, "resume_from", None)
    oip_only = [
        flag
        for flag, value in (
            ("--deadline-ms/--max-comparisons/--max-block-reads", budget),
            ("--checkpoint", checkpoint),
            ("--checkpoint-every", checkpoint_every),
            ("--resume-from", resume_from),
        )
        if value is not None
    ]
    if name != "oip":
        if oip_only:
            raise SystemExit(
                f"{', '.join(oip_only)} are only supported by the oip "
                f"algorithm, not {name!r}"
            )
        return kwargs
    if budget is not None:
        kwargs["budget"] = budget
    if checkpoint is not None:
        kwargs["checkpoint_path"] = checkpoint
    if checkpoint_every is not None:
        kwargs["checkpoint_every"] = checkpoint_every
    if resume_from is not None:
        kwargs["resume_from"] = resume_from
    return kwargs


def _resilience_kwargs(args: argparse.Namespace) -> dict:
    """Fault-injection keyword arguments shared by every algorithm."""
    kwargs: dict = {}
    profile = getattr(args, "fault_profile", "none")
    policy = fault_profile(profile, seed=getattr(args, "fault_seed", 0))
    if policy is not None:
        kwargs["fault_policy"] = policy
    max_retries = getattr(args, "max_retries", None)
    if max_retries is not None:
        if max_retries < 0:
            raise SystemExit(f"--max-retries must be >= 0, got {max_retries}")
        kwargs["max_read_retries"] = max_retries
    return kwargs


def _make_algorithm(
    name: str, args: argparse.Namespace, ignore_workers: bool = False
):
    """Instantiate algorithm *name*, honouring ``--workers`` for the
    OIPJOIN (the only algorithm with a parallel probe phase), the
    ``--fault-profile`` resilience flags for every algorithm, and the
    lifecycle flags (budget / checkpoint / cancellation)."""
    kwargs = _resilience_kwargs(args)
    kwargs.update(_lifecycle_kwargs(name, args))
    kwargs.update(_obs_kwargs(args))
    token = getattr(args, "_cancellation", None)
    if token is not None:
        kwargs["cancellation"] = token
    kernel = getattr(args, "kernel", None)
    if kernel is not None and kernel != "auto":
        if name == "oip":
            kwargs["kernel"] = kernel
        elif not ignore_workers:
            # Mirrors --workers: an explicitly requested kernel on a
            # non-oip algorithm is an error for `join`, and silently
            # skipped for the non-oip contenders of `compare`.
            raise SystemExit(
                f"--kernel is only supported by the oip algorithm, "
                f"not {name!r}"
            )
    index = getattr(args, "index", None)
    if index is not None:
        if name == "oip":
            kwargs["index_path"] = index
        elif not ignore_workers:
            raise SystemExit(
                f"--index is only supported by the oip algorithm, "
                f"not {name!r}"
            )
    workers = getattr(args, "workers", None)
    if workers is not None and not ignore_workers:
        if workers < 1:
            raise SystemExit(f"--workers must be >= 1, got {workers}")
        if name != "oip":
            raise SystemExit(
                f"--workers is only supported by the oip algorithm, "
                f"not {name!r}"
            )
        from .core.join import OIPJoin

        return OIPJoin(
            parallelism=workers,
            parallel_backend=args.parallel_backend,
            **kwargs,
        )
    try:
        return ALGORITHMS[name](**kwargs)
    except TypeError:
        # An algorithm whose constructor predates a lifecycle or
        # observability keyword.
        raise SystemExit(
            f"algorithm {name!r} does not support the given lifecycle "
            "or observability options"
        )


def _print_counters(counters, indent: str = "  ", partial: bool = False) -> None:
    """Print a counter snapshot; the single formatting path shared by the
    completed, cancelled and budget-abort outcomes."""
    if partial:
        print(f"{indent}partial counters:")
    for key, value in sorted(counters.snapshot().items()):
        print(f"{indent}{key:>20}: {value:,}")


def _install_cancel_handlers(token: CancellationToken) -> dict:
    """Route SIGINT/SIGTERM into the cancellation token so an
    interrupted join unwinds at a cooperative boundary into a partial
    result (and checkpoint) instead of a traceback.  Returns the
    previous handlers for restoration; silently does nothing off the
    main thread (tests call the CLI in-process)."""
    previous: dict = {}
    def cancel(_signum, _frame):
        token.cancel()

    for sig in (signal.SIGINT, signal.SIGTERM):
        try:
            previous[sig] = signal.signal(sig, cancel)
        except (ValueError, OSError):  # pragma: no cover - non-main thread
            pass
    return previous


def _restore_handlers(previous: dict) -> None:
    for sig, handler in previous.items():
        try:
            signal.signal(sig, handler)
        except (ValueError, OSError):  # pragma: no cover
            pass


def _batch_report_path(path: str, index: int) -> str:
    """Per-query report path: ``run.report.json`` → ``run.report.q0.json``."""
    import os

    base, ext = os.path.splitext(path)
    return f"{base}.q{index}{ext}" if ext else f"{path}.q{index}"


def _run_batch(args: argparse.Namespace) -> int:
    """The ``join --batch N`` path: N windowed queries, one partitioning."""
    if args.algorithm != "oip":
        raise SystemExit(
            f"--batch is only supported by the oip algorithm, "
            f"not {args.algorithm!r}"
        )
    if args.batch < 1:
        raise SystemExit(f"--batch must be >= 1, got {args.batch}")
    unsupported = [
        flag
        for flag, value in (
            ("--workers", getattr(args, "workers", None)),
            ("--checkpoint", getattr(args, "checkpoint", None)),
            ("--checkpoint-every", getattr(args, "checkpoint_every", None)),
            ("--resume-from", getattr(args, "resume_from", None)),
            ("--index", getattr(args, "index", None)),
        )
        if value is not None
    ]
    if unsupported:
        raise SystemExit(
            f"{', '.join(unsupported)} are not supported with --batch "
            "(batched queries run sequentially and are not checkpointed)"
        )
    from .engine.batch import BatchJoin, equal_windows

    outer = _make_relation(args, args.seed, "outer")
    inner = _make_relation(args, args.seed + 1, "inner")
    token = CancellationToken()
    args._cancellation = token
    kwargs = _resilience_kwargs(args)
    kwargs.update(_obs_kwargs(args))
    budget = _budget_from(args)
    if budget is not None:
        kwargs["budget"] = budget
    kernel = getattr(args, "kernel", None)
    if kernel is not None:
        kwargs["kernel"] = kernel
    batch = BatchJoin(cancellation=token, **kwargs)
    try:
        windows = equal_windows(outer.time_range, args.batch)
    except ValueError as error:
        raise SystemExit(str(error))
    previous = _install_cancel_handlers(token)
    try:
        result = batch.run(outer, inner, windows)
    except StorageFaultError as error:
        raise SystemExit(f"batch join failed after retries: {error}")
    except BudgetExceededError as error:
        print(
            f"oip.batch: per-query budget exceeded ({error.reason}) after "
            f"{error.partitions_completed} outer partition(s)"
        )
        _print_counters(error.counters, indent="  ", partial=True)
        return 75
    finally:
        _restore_handlers(previous)
        sink = getattr(args, "_trace_sink", None)
        if sink is not None:
            sink.close()
    metrics = getattr(args, "_metrics", None)
    metrics_out = getattr(args, "metrics_out", None)
    if metrics is not None and metrics_out is not None:
        if getattr(args, "metrics_format", "json") == "prometheus":
            text = metrics.to_prometheus_text()
        else:
            text = metrics.to_json()
        if not text.endswith("\n"):
            text += "\n"
        with open(metrics_out, "w", encoding="utf-8") as handle:
            handle.write(text)
    report_path = getattr(args, "report", None)
    if report_path is not None:
        from .obs.report import write_report

        for query in result.queries:
            if query.report is not None:
                write_report(
                    query.report,
                    _batch_report_path(report_path, query.details["query_index"]),
                )
    if getattr(args, "json", False):
        import json as json_module

        reports = [query.report for query in result.queries]
        sys.stdout.write(
            json_module.dumps(reports, indent=2, sort_keys=True) + "\n"
        )
        return 0 if result.completed else 130
    for query in result.queries:
        window = query.details["window"]
        status = "" if query.completed else " (cancelled, partial)"
        print(
            f"query {query.details['query_index']} "
            f"[{window[0]:,}, {window[1]:,}]: "
            f"{query.cardinality:,} pairs in {query.elapsed_ms:.1f} ms"
            f"{status}"
        )
    print(
        f"oip.batch: {result.total_pairs:,} result pairs over "
        f"{len(result.queries)}/{len(result.windows)} quer"
        f"{'y' if len(result.windows) == 1 else 'ies'} in "
        f"{result.elapsed_ms:.1f} ms (one shared partitioning)"
    )
    _print_counters(result.combined_counters())
    for key, value in sorted(result.details.items()):
        print(f"  {key:>20}: {value}")
    return 0 if result.completed else 130


def _index_preflight(args: argparse.Namespace) -> Optional[int]:
    """The strict ``join --index`` contract: without ``--index-fallback``
    an unusable snapshot is an error, not a silent rebuild.  Returns the
    exit code — 66 (EX_NOINPUT) when the snapshot is missing, 65
    (EX_DATAERR) when it exists but cannot load — or ``None`` when the
    snapshot parsed cleanly (config mismatches surface after the join)."""
    if getattr(args, "index", None) is None or getattr(
        args, "index_fallback", False
    ):
        return None
    # Usage errors outrank file-state errors: non-oip algorithms and
    # --batch reject --index with a SystemExit of their own.
    if getattr(args, "algorithm", "oip") != "oip":
        return None
    if getattr(args, "batch", None) is not None:
        return None
    from .storage.snapshot import ParsedSnapshot, SnapshotError

    try:
        ParsedSnapshot.read(args.index)
    except SnapshotError as error:
        code = 66 if error.reason == "missing" else 65
        print(
            f"join: index snapshot {args.index}: {error} "
            f"[reason={error.reason}]; pass --index-fallback to rebuild "
            "in memory instead",
            file=sys.stderr,
        )
        return code
    return None


def _run_single(args: argparse.Namespace) -> int:
    if args.algorithm not in ALGORITHMS:
        raise SystemExit(
            f"unknown algorithm {args.algorithm!r}; "
            f"choose from {', '.join(sorted(ALGORITHMS))}"
        )
    strict_index = _index_preflight(args)
    if strict_index is not None:
        return strict_index
    if getattr(args, "batch", None) is not None:
        return _run_batch(args)
    outer = _make_relation(args, args.seed, "outer")
    inner = _make_relation(args, args.seed + 1, "inner")
    token = CancellationToken()
    args._cancellation = token
    join = _make_algorithm(args.algorithm, args)
    previous = _install_cancel_handlers(token)
    started = time.perf_counter()
    try:
        result = join.join(outer, inner)
    except StorageFaultError as error:
        raise SystemExit(f"join failed after retries: {error}")
    except BudgetExceededError as error:
        # No JoinResult exists here, so the partial elapsed time is the
        # CLI's own measurement (completed runs report the base class's
        # JoinResult.elapsed_ms instead).
        elapsed = time.perf_counter() - started
        print(
            f"{args.algorithm}: budget exceeded ({error.reason}) after "
            f"{elapsed * 1e3:.1f} ms and "
            f"{error.partitions_completed} outer partition(s)"
        )
        _print_counters(error.counters, indent="  ", partial=True)
        if error.checkpoint_path:
            print(f"  checkpoint written to: {error.checkpoint_path}")
        return 75  # EX_TEMPFAIL: retry with a bigger budget or resume
    except KeyboardInterrupt:
        # An interrupt that outran the cooperative machinery (e.g. a
        # second Ctrl-C, or a platform without signal rerouting).
        print(f"\n{args.algorithm}: interrupted; no partial result")
        return 130
    finally:
        _restore_handlers(previous)
        sink = getattr(args, "_trace_sink", None)
        if sink is not None:
            sink.close()
    _write_obs_artifacts(args, result)
    if (
        getattr(args, "index", None) is not None
        and not getattr(args, "index_fallback", False)
        and not (result.details.get("index") or {}).get("loaded", False)
    ):
        # The snapshot parsed in preflight but was rejected at load time
        # (fingerprint or configuration mismatch) and the join fell back
        # to an in-memory rebuild — strict mode makes that an error.
        detail = (result.details.get("index") or {}).get("reason", "mismatch")
        print(
            f"join: index snapshot {args.index} was not used: {detail}; "
            "pass --index-fallback to accept the in-memory rebuild",
            file=sys.stderr,
        )
        return 65  # EX_DATAERR
    if getattr(args, "json", False):
        from .obs.report import dumps_report

        sys.stdout.write(dumps_report(result.report))
        return 0 if result.completed else 130
    if not result.completed:
        print(
            f"{args.algorithm}: cancelled after {result.elapsed_ms:.1f} ms "
            f"with {result.cardinality:,} partial result pairs"
        )
        _print_counters(result.counters, partial=True)
        checkpoint = result.details.get("checkpoint")
        if checkpoint:
            print(f"  checkpoint written to: {checkpoint}")
            print(f"  resume with: --resume-from {checkpoint}")
        return 130
    print(
        f"{args.algorithm}: {result.cardinality:,} result pairs in "
        f"{result.elapsed_ms:.1f} ms"
    )
    _print_counters(result.counters)
    if result.resilience.faults_observed or args.fault_profile != "none":
        for key, value in sorted(result.resilience.snapshot().items()):
            print(f"  {key:>20}: {value:,}")
    for key, value in sorted(result.details.items()):
        print(f"  {key:>20}: {value}")
    return 0


def _run_compare(args: argparse.Namespace) -> int:
    reports = getattr(args, "reports", None) or []
    if reports:
        if len(reports) != 2:
            raise SystemExit(
                "comparing run reports takes exactly two paths "
                f"(base other), got {len(reports)}"
            )
        from .obs.compare import main as compare_main

        forwarded = list(reports)
        forwarded += ["--threshold", str(args.threshold)]
        if getattr(args, "json", False):
            forwarded.append("--json")
        return compare_main(forwarded)
    if getattr(args, "json", False):
        raise SystemExit(
            "compare --json requires two REPORT paths (report-diff mode)"
        )
    names = [name.strip() for name in args.algorithms.split(",") if name.strip()]
    unknown = [name for name in names if name not in ALGORITHMS]
    if unknown:
        raise SystemExit(
            f"unknown algorithm(s): {', '.join(unknown)}; "
            f"choose from {', '.join(sorted(ALGORITHMS))}"
        )
    outer = _make_relation(args, args.seed, "outer")
    inner = _make_relation(args, args.seed + 1, "inner")
    print(
        f"{'algorithm':>10} {'runtime':>10} {'results':>9} "
        f"{'false hits':>11} {'block IO':>9} {'cpu ops':>10}"
    )
    reference: Optional[List] = None
    for name in names:
        join = _make_algorithm(name, args, ignore_workers=(name != "oip"))
        started = time.perf_counter()
        try:
            result = join.join(outer, inner)
        except StorageFaultError as error:
            print(f"{name:>10} FAILED: {error}")
            continue
        elapsed = time.perf_counter() - started
        keys = result.pair_keys()
        if reference is None:
            reference = keys
        elif keys != reference:
            print(f"WARNING: {name} returned a different result set!")
        print(
            f"{name:>10} {elapsed * 1e3:>8.1f}ms {result.cardinality:>9,} "
            f"{result.counters.false_hits:>11,} "
            f"{result.counters.total_ios:>9,} "
            f"{result.counters.cpu_comparisons:>10,}"
        )
    return 0


def _run_derive_k(args: argparse.Namespace) -> int:
    model = JoinCostModel(
        outer_cardinality=args.outer,
        inner_cardinality=args.inner,
        outer_duration_fraction=args.lambda_outer,
        inner_duration_fraction=args.lambda_inner,
        tuples_per_block=args.tuples_per_block,
        weights=CostWeights(cpu=args.cpu_cost, io=args.io_cost),
    )
    derivation = derive_k(model)
    print(f"{'n':>3} {'k_n':>10} {'|p_r|_n':>12} {'tau_n':>10}")
    for index, step in enumerate(derivation.trace):
        print(
            f"{index:>3} {step.k:>10,} {step.outer_partitions:>12,} "
            f"{step.tau:>10.5f}"
        )
    print(
        f"k = {derivation.k:,} (converged: {derivation.converged}, "
        f"oscillated: {derivation.oscillated})"
    )
    return 0


def _run_datasets(args: argparse.Namespace) -> int:
    print(
        f"{'dataset':>10} {'n (paper n)':>22} {'range':>16} "
        f"{'avg dur (paper)':>22}"
    )
    for name, generator in sorted(DATASET_GENERATORS.items()):
        paper = PAPER_DATASET_PROPERTIES[name]
        props = dataset_properties(
            generator(cardinality=args.cardinality, seed=args.seed)
        )
        print(
            f"{name:>10} "
            f"{props.cardinality:>9,} ({paper.cardinality:>10,}) "
            f"{props.time_range:>16,} "
            f"{props.avg_duration:>10,.0f} ({paper.avg_duration:>8,})"
        )
    return 0


def _run_save_index(args: argparse.Namespace) -> int:
    """The ``save-index`` path: build both OIP partitionings for a
    workload pair and persist them as an atomic snapshot."""
    from .engine.governor import QueryCancelledError
    from .storage.snapshot import save_index

    outer = _make_relation(args, args.seed, "outer")
    inner = _make_relation(args, args.seed + 1, "inner")
    token = CancellationToken()
    previous = _install_cancel_handlers(token)
    started = time.perf_counter()
    try:
        info = save_index(
            args.out,
            outer,
            inner,
            k=args.k,
            k_outer=args.k_outer,
            k_inner=args.k_inner,
            store_payloads=not args.no_payloads,
            cancellation=token,
            pre_rename_delay_s=(args.write_delay_ms or 0.0) / 1000.0,
        )
    except QueryCancelledError:
        # atomic_commit removed the temp file on the way out — an
        # interrupted save leaves no *.tmp litter.
        print("save-index: interrupted; no snapshot written")
        return 130
    except ValueError as error:
        raise SystemExit(str(error))
    finally:
        _restore_handlers(previous)
    elapsed = (time.perf_counter() - started) * 1e3
    print(
        f"saved {info['path']}: {info['bytes']:,} bytes, "
        f"generation {info['generation']}, "
        f"k_outer={info['k_outer']}, k_inner={info['k_inner']} "
        f"({info['outer_partitions']}+{info['inner_partitions']} "
        f"partitions) in {elapsed:.1f} ms"
    )
    if not info["payloads_stored"]:
        print(
            "  note: payloads not stored (unstable types or "
            "--no-payloads); journaled maintenance is unavailable"
        )
    return 0


def _run_fsck(args: argparse.Namespace) -> int:
    """The ``fsck`` path: validate a snapshot (and its journal), repair
    what is safely repairable, and report a machine-readable verdict.

    Exit codes: 0 the index is loadable (after any repairs), 1 it is
    corrupt beyond repair (a join would degrade to a rebuild), 2 there
    is no snapshot at the path.
    """
    from .storage.snapshot import fsck_index

    verdict = fsck_index(
        args.path, repair=not args.no_repair, deep=not args.no_deep
    )
    exit_code = 2 if not verdict["exists"] else (0 if verdict["ok"] else 1)
    if args.json:
        import json

        verdict = dict(verdict, exit_code=exit_code)
        sys.stdout.write(json.dumps(verdict, indent=2, sort_keys=True) + "\n")
    else:
        state = (
            "missing"
            if not verdict["exists"]
            else "ok"
            if verdict["ok"]
            else "corrupt"
        )
        print(f"{args.path}: {state}")
        if verdict["generation"] is not None:
            print(f"  generation: {verdict['generation']}")
        for problem in verdict["problems"]:
            print(f"  problem: {problem}")
        for repair in verdict["repairs"]:
            print(f"  repaired: {repair}")
    return exit_code


def _run_serve(args: argparse.Namespace) -> int:
    """The ``serve`` path: a long-lived query service over one snapshot.

    Speaks the line-delimited JSON protocol over TCP (default; an
    ephemeral port is announced in the ``ready`` event) or over
    stdin/stdout with ``--stdio``.  SIGTERM/SIGINT drain gracefully;
    SIGHUP triggers a hot snapshot refresh.  Exit codes: 0 clean stop,
    66 the snapshot is missing, 65 it exists but cannot serve.
    """
    import json
    import os

    from .obs.log import QueryLog
    from .service import JoinService, ServiceServer, serve_stdio
    from .service.errors import ScaleOutConfigError
    from .service.protocol import encode_message
    from .storage.snapshot import SnapshotError

    try:
        shard_ranges = _check_scaleout_config(args)
    except ScaleOutConfigError as error:
        # Exit-code convention (PR 8): 64 = EX_USAGE, a configuration
        # the operator must fix; the structured detail goes to stderr
        # so supervisors can distinguish it from snapshot failures.
        print(
            json.dumps(
                {"event": "config_error", **error.to_wire()},
                sort_keys=True,
            ),
            file=sys.stderr,
        )
        return 64
    service_kwargs = dict(
        max_active=args.max_active,
        max_queued=args.max_queued,
        admit_timeout_s=args.admit_timeout_ms / 1e3,
        default_deadline_ms=args.default_deadline_ms,
        kernel=args.kernel,
        tracing=args.tracing,
        result_cache_size=args.result_cache_size,
        shards=args.shards,
        shard_ranges=shard_ranges,
    )
    if args.workers > 1:
        return _run_serve_workers(args, service_kwargs)
    query_log = None
    if args.query_log:
        query_log = QueryLog(
            path=args.query_log,
            sample_rate=args.log_sample_rate,
            slow_query_ms=args.slow_query_ms,
        )
    service = JoinService(
        args.index,
        query_log=query_log,
        **service_kwargs,
    )
    try:
        generation = service.start()
    except SnapshotError as error:
        print(
            f"serve: cannot load snapshot {args.index}: {error} "
            f"[reason={error.reason}]",
            file=sys.stderr,
        )
        return 66 if error.reason == "missing" else 65
    ready = {
        "event": "ready",
        "pid": os.getpid(),
        "generation": generation,
        "path": args.index,
    }
    if args.stdio:
        sys.stdout.buffer.write(encode_message(ready))
        sys.stdout.buffer.flush()
        serve_stdio(service, sys.stdin.buffer, sys.stdout.buffer)
        if service.status != "stopped":
            service.drain(
                timeout_s=args.drain_timeout_s,
                hard_stop_timeout_s=args.hard_stop_timeout_s,
            )
        if query_log is not None:
            query_log.close()
        return 0
    server = ServiceServer(
        service,
        host=args.host,
        port=args.port,
        drain_timeout_s=args.drain_timeout_s,
        hard_stop_timeout_s=args.hard_stop_timeout_s,
        metrics_port=args.metrics_port,
    ).start()
    ready["host"] = server.host
    ready["port"] = server.port
    if server.metrics_exporter is not None:
        ready["metrics_port"] = server.metrics_exporter.port
    print(json.dumps(ready, sort_keys=True), flush=True)

    def _drain(_signum, _frame):
        server.initiate_shutdown()

    def _refresh(_signum, _frame):
        import threading

        threading.Thread(
            target=lambda: _swallow_refresh(service), daemon=True
        ).start()

    previous: dict = {}
    for sig in (signal.SIGTERM, signal.SIGINT):
        try:
            previous[sig] = signal.signal(sig, _drain)
        except (ValueError, OSError):  # pragma: no cover - non-main thread
            pass
    hup = getattr(signal, "SIGHUP", None)
    if hup is not None:
        try:
            previous[hup] = signal.signal(hup, _refresh)
        except (ValueError, OSError):  # pragma: no cover
            pass
    try:
        while not server.wait(timeout=0.5):
            pass
    finally:
        _restore_handlers(previous)
        if query_log is not None:
            query_log.close()
    return 0


def _swallow_refresh(service) -> None:
    """SIGHUP refresh: a rejected swap must never kill the server."""
    from .service.errors import ServiceError

    try:
        service.refresh()
    except ServiceError:
        pass


def _check_scaleout_config(args: argparse.Namespace):
    """Validate the scale-out flags before any fork or snapshot load;
    raises :class:`~repro.service.errors.ScaleOutConfigError` (exit 64)
    on anything a retry cannot fix.  Returns the parsed shard plan (or
    ``None``)."""
    import json

    from .service.errors import ScaleOutConfigError
    from .service.router import validate_shard_ranges
    from .service.workers import MAX_WORKERS

    if not 1 <= args.workers <= MAX_WORKERS:
        raise ScaleOutConfigError(
            f"--workers must be in [1, {MAX_WORKERS}], got {args.workers}",
            detail={"workers": args.workers},
        )
    if args.workers > 1 and args.stdio:
        raise ScaleOutConfigError(
            "--workers > 1 requires TCP mode; --stdio is one process "
            "by construction"
        )
    if args.workers > 1 and args.metrics_port is not None:
        raise ScaleOutConfigError(
            "--metrics-port is not supported with --workers > 1 (each "
            "worker owns its own registry; scrape per-worker control "
            "ports or use the aggregated stats op)"
        )
    if args.result_cache_size < 0:
        raise ScaleOutConfigError(
            f"--result-cache-size must be >= 0, got "
            f"{args.result_cache_size}",
            detail={"result_cache_size": args.result_cache_size},
        )
    if args.shards is not None and args.shards < 1:
        raise ScaleOutConfigError(
            f"--shards must be >= 1, got {args.shards}",
            detail={"shards": args.shards},
        )
    if args.shards is not None and args.shard_ranges is not None:
        raise ScaleOutConfigError(
            "--shards and --shard-ranges are mutually exclusive"
        )
    if args.shard_ranges is None:
        return None
    try:
        parsed = json.loads(args.shard_ranges)
    except ValueError as error:
        raise ScaleOutConfigError(
            f"--shard-ranges is not valid JSON: {error}"
        ) from None
    if not isinstance(parsed, list):
        raise ScaleOutConfigError(
            f"--shard-ranges must be a JSON list of [lo, hi] pairs, "
            f"got {type(parsed).__name__}"
        )
    return validate_shard_ranges(parsed)


def _run_serve_workers(
    args: argparse.Namespace, service_kwargs: dict
) -> int:
    """The ``serve --workers N`` path: fork a pre-fork pool and
    supervise it; the parent never serves a request."""
    import json
    import os

    from .service.workers import WorkerStartupError, WorkerSupervisor

    supervisor = WorkerSupervisor(
        args.index,
        workers=args.workers,
        host=args.host,
        port=args.port,
        service_kwargs=service_kwargs,
        drain_timeout_s=args.drain_timeout_s,
        hard_stop_timeout_s=args.hard_stop_timeout_s,
        query_log_path=args.query_log,
        log_sample_rate=args.log_sample_rate,
        slow_query_ms=args.slow_query_ms,
    )
    try:
        info = supervisor.start()
    except WorkerStartupError as error:
        print(f"serve: {error}", file=sys.stderr)
        supervisor.shutdown()
        return error.exit_code
    ready = {
        "event": "ready",
        "pid": os.getpid(),
        "generation": info["generation"],
        "path": args.index,
        "host": info["host"],
        "port": info["port"],
        "workers": info["workers"],
        "pids": info["pids"],
    }
    print(json.dumps(ready, sort_keys=True), flush=True)

    def _stop(_signum, _frame):
        supervisor.initiate_shutdown()

    def _refresh(_signum, _frame):
        supervisor.refresh()

    previous: dict = {}
    for sig in (signal.SIGTERM, signal.SIGINT):
        try:
            previous[sig] = signal.signal(sig, _stop)
        except (ValueError, OSError):  # pragma: no cover - non-main thread
            pass
    hup = getattr(signal, "SIGHUP", None)
    if hup is not None:
        try:
            previous[hup] = signal.signal(hup, _refresh)
        except (ValueError, OSError):  # pragma: no cover
            pass
    try:
        supervisor.run()
    finally:
        supervisor.shutdown()
        _restore_handlers(previous)
    return 0


def _run_stats(args: argparse.Namespace) -> int:
    """The ``stats`` path: fetch a running service's latency quantiles.

    ``--json`` captures the raw ``service_stats`` document — the format
    ``repro compare`` diffs against a second capture.
    """
    import json

    from .service import ServiceClient

    with ServiceClient(args.host, args.port, timeout_s=args.timeout_s) as c:
        stats = c.stats()
    if args.json:
        sys.stdout.write(json.dumps(stats, indent=2, sort_keys=True) + "\n")
        return 0
    print(
        f"service: {stats.get('status')} generation={stats.get('generation')} "
        f"uptime={stats.get('uptime_s', 0.0):.1f}s "
        f"queries={stats.get('queries_served', 0):,}"
    )
    for section in ("endpoints", "phases"):
        rows = stats.get(section) or {}
        if not rows:
            continue
        print(f"{section}:")
        print(
            f"  {'name':>24} {'count':>8} {'mean':>9} "
            f"{'p50':>9} {'p95':>9} {'p99':>9}"
        )
        for name in sorted(rows):
            row = rows[name]
            print(
                f"  {name:>24} {row['count']:>8,} {row['mean_ms']:>7.2f}ms "
                f"{row['p50_ms']:>7.2f}ms {row['p95_ms']:>7.2f}ms "
                f"{row['p99_ms']:>7.2f}ms"
            )
    counters = stats.get("counters") or {}
    if counters:
        print("counters:")
        for name in sorted(counters):
            print(f"  {name:>32}: {counters[name]:,}")
    tracing = stats.get("tracing")
    if tracing is not None:
        traces = stats.get("traces") or {}
        print(
            f"tracing: {'on' if tracing else 'off'}"
            + (
                f" (buffered={traces.get('buffered', 0)}, "
                f"dropped={traces.get('dropped', 0)})"
                if tracing
                else ""
            )
        )
    log = stats.get("log")
    if log:
        print(
            f"query log: emitted={log.get('emitted', 0):,} "
            f"dropped={log.get('dropped', 0):,}"
        )
    return 0


def _run_calibrate(args: argparse.Namespace) -> int:
    """The ``calibrate`` path: fit Equation 2 cost constants from run
    reports (``join --report``) — delegates to ``repro.obs.calibrate``."""
    from .obs.calibrate import main as calibrate_main

    forwarded = list(args.reports)
    if args.out:
        forwarded += ["--out", args.out]
    if args.json:
        forwarded.append("--json")
    return calibrate_main(forwarded)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Overlap Interval Partition Join (SIGMOD 2014) reproduction "
            "command line"
        ),
    )
    commands = parser.add_subparsers(dest="command", required=True)

    join_parser = commands.add_parser(
        "join", help="run one overlap join and print its cost counters"
    )
    _add_workload_arguments(join_parser)
    join_parser.add_argument(
        "--algorithm", default="oip", help="short algorithm name"
    )
    join_parser.add_argument(
        "--batch",
        type=int,
        default=None,
        metavar="N",
        help=(
            "batched execution (oip only): split the time range into N "
            "equal windows and run one windowed overlap query per window "
            "against a single shared OIP partitioning (one OIPCREATE, "
            "one decode cache); prints one summary line per query, and "
            "--report PATH writes per-query reports to PATH.qN"
        ),
    )
    join_parser.add_argument(
        "--index",
        default=None,
        metavar="PATH",
        help=(
            "load the OIP partitionings from a persisted snapshot "
            "(written by save-index) instead of re-partitioning (oip "
            "only); an unusable snapshot is an error with a distinct "
            "exit code: 66 when the snapshot is missing, 65 when it is "
            "corrupt or does not match the requested configuration"
        ),
    )
    join_parser.add_argument(
        "--index-fallback",
        action="store_true",
        help=(
            "with --index: degrade a missing/corrupt/mismatched "
            "snapshot to an in-memory rebuild with identical results "
            "(exit 0) instead of failing with exit 66/65"
        ),
    )
    _add_parallel_arguments(join_parser)
    _add_resilience_arguments(join_parser)
    _add_lifecycle_arguments(join_parser)
    _add_obs_arguments(join_parser)
    join_parser.set_defaults(handler=_run_single)

    compare_parser = commands.add_parser(
        "compare",
        help=(
            "run several algorithms on the same input, or diff two run "
            "reports (repro compare base.json other.json)"
        ),
    )
    compare_parser.add_argument(
        "reports",
        nargs="*",
        metavar="REPORT",
        help=(
            "two JSON paths to diff — either run reports (written by "
            "join --report) or service stats captures (written by "
            "stats --json); with no paths, runs the algorithm "
            "comparison instead"
        ),
    )
    compare_parser.add_argument(
        "--threshold",
        type=float,
        default=0.10,
        help=(
            "relative phase slow-down flagged as a regression in "
            "report-diff mode (default %(default)s)"
        ),
    )
    compare_parser.add_argument(
        "--json",
        action="store_true",
        help="emit the report diff as JSON (report-diff mode only)",
    )
    _add_workload_arguments(compare_parser)
    compare_parser.add_argument(
        "--algorithms",
        default="oip,lqt,rit,sgt,smj",
        help="comma-separated short names",
    )
    _add_parallel_arguments(compare_parser)
    _add_resilience_arguments(compare_parser)
    compare_parser.set_defaults(handler=_run_compare)

    derive_parser = commands.add_parser(
        "derive-k", help="run the Section 6.2 fixed-point iteration"
    )
    derive_parser.add_argument("--outer", type=int, required=True)
    derive_parser.add_argument("--inner", type=int, required=True)
    derive_parser.add_argument("--lambda-outer", type=float, default=0.0001)
    derive_parser.add_argument("--lambda-inner", type=float, default=0.0005)
    derive_parser.add_argument("--tuples-per-block", type=int, default=14)
    derive_parser.add_argument("--cpu-cost", type=float, default=0.5)
    derive_parser.add_argument("--io-cost", type=float, default=10.0)
    derive_parser.set_defaults(handler=_run_derive_k)

    datasets_parser = commands.add_parser(
        "datasets", help="print the Table 2 stand-in properties"
    )
    datasets_parser.add_argument("--cardinality", type=int, default=2_000)
    datasets_parser.add_argument("--seed", type=int, default=0)
    datasets_parser.set_defaults(handler=_run_datasets)

    save_parser = commands.add_parser(
        "save-index",
        help=(
            "build both OIP partitionings for a workload pair and "
            "persist them as an atomic, checksummed snapshot"
        ),
    )
    _add_workload_arguments(save_parser)
    save_parser.add_argument(
        "--out", required=True, metavar="PATH", help="snapshot destination"
    )
    save_parser.add_argument(
        "--k", type=int, default=None, help="pin one k for both relations"
    )
    save_parser.add_argument(
        "--k-outer", type=int, default=None, help="pin the outer relation's k"
    )
    save_parser.add_argument(
        "--k-inner", type=int, default=None, help="pin the inner relation's k"
    )
    save_parser.add_argument(
        "--no-payloads",
        action="store_true",
        help=(
            "omit tuple payloads from the snapshot (smaller file; "
            "journaled maintenance becomes unavailable)"
        ),
    )
    save_parser.add_argument(
        "--write-delay-ms",
        type=float,
        default=None,
        help=argparse.SUPPRESS,  # crash-window hook for recovery tests
    )
    save_parser.set_defaults(handler=_run_save_index)

    fsck_parser = commands.add_parser(
        "fsck",
        help=(
            "validate an index snapshot and its maintenance journal, "
            "repairing what is safely repairable"
        ),
    )
    fsck_parser.add_argument("path", help="snapshot path to check")
    fsck_parser.add_argument(
        "--json", action="store_true", help="emit the verdict as JSON"
    )
    fsck_parser.add_argument(
        "--no-repair",
        action="store_true",
        help="report only; leave stale temp files and torn journal tails",
    )
    fsck_parser.add_argument(
        "--no-deep",
        action="store_true",
        help="skip the per-tuple grid-position validation pass",
    )
    fsck_parser.set_defaults(handler=_run_fsck)

    serve_parser = commands.add_parser(
        "serve",
        help=(
            "run a long-lived, fault-tolerant query service over a "
            "persisted snapshot (line-delimited JSON over TCP or stdio)"
        ),
    )
    serve_parser.add_argument(
        "--index",
        required=True,
        metavar="PATH",
        help="snapshot to serve (written by save-index, with payloads)",
    )
    serve_parser.add_argument(
        "--host", default="127.0.0.1", help="bind address (default %(default)s)"
    )
    serve_parser.add_argument(
        "--port",
        type=int,
        default=0,
        help="TCP port; 0 picks an ephemeral port announced in the ready event",
    )
    serve_parser.add_argument(
        "--stdio",
        action="store_true",
        help="speak the protocol over stdin/stdout instead of TCP",
    )
    serve_parser.add_argument(
        "--max-active",
        type=int,
        default=4,
        help="concurrent query slots (default %(default)s)",
    )
    serve_parser.add_argument(
        "--max-queued",
        type=int,
        default=16,
        help="admission queue depth before shedding (default %(default)s)",
    )
    serve_parser.add_argument(
        "--admit-timeout-ms",
        type=float,
        default=5000.0,
        help="max queue wait before a query is shed (default %(default)s)",
    )
    serve_parser.add_argument(
        "--default-deadline-ms",
        type=float,
        default=None,
        help="per-query deadline applied when a request sets none",
    )
    serve_parser.add_argument(
        "--drain-timeout-s",
        type=float,
        default=30.0,
        help=(
            "graceful-drain window on SIGTERM/shutdown before in-flight "
            "queries are hard-stopped (default %(default)s)"
        ),
    )
    serve_parser.add_argument(
        "--hard-stop-timeout-s",
        type=float,
        default=5.0,
        help="wait after cancelling stragglers (default %(default)s)",
    )
    serve_parser.add_argument(
        "--kernel",
        default="auto",
        help="partition-pair join kernel for served queries",
    )
    serve_parser.add_argument(
        "--tracing",
        action="store_true",
        help=(
            "record per-query span trees (admission wait, snapshot pin, "
            "join phases) in a ring buffer served by the tracedump op"
        ),
    )
    serve_parser.add_argument(
        "--query-log",
        default=None,
        metavar="PATH",
        help=(
            "append one NDJSON event per query (and lifecycle event) to "
            "PATH; lines are written atomically under concurrency"
        ),
    )
    serve_parser.add_argument(
        "--slow-query-ms",
        type=float,
        default=None,
        help=(
            "queries at or above this latency are re-logged at warning "
            "level with slow=true, bypassing sampling"
        ),
    )
    serve_parser.add_argument(
        "--log-sample-rate",
        type=float,
        default=1.0,
        help=(
            "deterministic per-trace sampling rate for info-level query "
            "events (default %(default)s; warnings always pass)"
        ),
    )
    serve_parser.add_argument(
        "--metrics-port",
        type=int,
        default=None,
        help=(
            "also serve Prometheus text exposition on GET /metrics at "
            "this port (0 picks an ephemeral port announced in the "
            "ready event); TCP mode only"
        ),
    )
    serve_parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help=(
            "worker processes accepting on the shared listener; >1 "
            "forks a pre-fork pool so probe work scales past one core "
            "(default %(default)s; TCP mode only)"
        ),
    )
    serve_parser.add_argument(
        "--result-cache-size",
        type=int,
        default=0,
        help=(
            "per-worker LRU capacity for finished response bodies, "
            "keyed by (generation, request fingerprint); 0 disables "
            "(default %(default)s)"
        ),
    )
    serve_parser.add_argument(
        "--shards",
        type=int,
        default=None,
        help=(
            "split every query's time domain into this many equal "
            "ranges and scatter-gather an independent join per shard "
            "(answers stay bit-identical to the unsharded join)"
        ),
    )
    serve_parser.add_argument(
        "--shard-ranges",
        default=None,
        metavar="JSON",
        help=(
            'explicit shard plan as a JSON list of [lo, hi] pairs, e.g. '
            '"[[1,5000],[5001,20000]]"; must tile the snapshot\'s time '
            "domain without gaps or overlaps"
        ),
    )
    serve_parser.set_defaults(handler=_run_serve)

    stats_parser = commands.add_parser(
        "stats",
        help=(
            "fetch a running service's latency quantiles (p50/p95/p99 "
            "per endpoint and join phase) over the wire"
        ),
    )
    stats_parser.add_argument(
        "--host", default="127.0.0.1", help="service host (default %(default)s)"
    )
    stats_parser.add_argument(
        "--port", type=int, required=True, help="service TCP port"
    )
    stats_parser.add_argument(
        "--timeout-s",
        type=float,
        default=30.0,
        help="connection/request timeout (default %(default)s)",
    )
    stats_parser.add_argument(
        "--json",
        action="store_true",
        help=(
            "emit the raw service_stats document (the format "
            "'repro compare' diffs against a second capture)"
        ),
    )
    stats_parser.set_defaults(handler=_run_stats)

    calibrate_parser = commands.add_parser(
        "calibrate",
        help=(
            "fit the Equation 2 cost constants (c_cpu, c_io in ms/op) "
            "from run reports via least squares"
        ),
    )
    calibrate_parser.add_argument(
        "reports",
        nargs="+",
        metavar="REPORT",
        help="run-report JSON paths written by join --report",
    )
    calibrate_parser.add_argument(
        "--out",
        default=None,
        metavar="PATH",
        help="write the calibration JSON (consumed by JoinPlanner)",
    )
    calibrate_parser.add_argument(
        "--json", action="store_true", help="print the calibration as JSON"
    )
    calibrate_parser.set_defaults(handler=_run_calibrate)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":
    sys.exit(main())
