"""Run reports: one JSON document per join execution.

The benchmark scripts print tables and the CLI prints counters, but
neither leaves a *stable machine-readable artifact* behind — nothing a
perf-trajectory tracker (or the next PR) can diff.  A run report is that
artifact: algorithm, configuration (``k``, granule durations, cost
weights), wall-clock phase timings, the full
:class:`~repro.storage.metrics.CostCounters` /
:class:`~repro.storage.metrics.ResilienceCounters`, the parallel
:class:`~repro.engine.parallel.ExecutionReport`, the governor outcome
and the trace span tree.

Reports are produced by
:meth:`repro.core.base.OverlapJoinAlgorithm.join` for every algorithm
when ``collect_report=True`` (the CLI flags ``--report`` / ``--json``
turn it on), exposed on ``JoinResult.report``, written with
:func:`write_report` and validated against the checked-in JSON schema
(``run_report.schema.json``) by :func:`validate_report` — a
dependency-free validator covering the schema subset the report uses
(types, required, properties, items, enum, minimum,
additionalProperties, local ``$ref``).

Counter sections are exact integers straight from the run, so a
sequential and a parallel execution of the same join produce reports
with *identical* ``counters``/``resilience`` sections (the PR-1
determinism guarantee), while their phase-span trees legitimately
differ in shape — both stay schema-valid, which is what
``tests/obs/test_report.py`` pins down.
"""

from __future__ import annotations

import dataclasses
import json
import os
from typing import Any, Dict, List, Optional

from .trace import Span, span_tree

__all__ = [
    "REPORT_VERSION",
    "ReportValidationError",
    "build_report",
    "phase_table",
    "dumps_report",
    "write_report",
    "load_report",
    "load_schema",
    "validate_report",
]

#: Report document format version.
REPORT_VERSION = 1

_SCHEMA_PATH = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "run_report.schema.json"
)
_SCHEMA: Optional[Dict[str, Any]] = None


class ReportValidationError(ValueError):
    """A run-report document does not conform to the schema."""

    def __init__(self, path: str, message: str) -> None:
        super().__init__(f"at {path or '$'}: {message}")
        self.path = path


# ----------------------------------------------------------------------
# Building.
# ----------------------------------------------------------------------


def _jsonable(value: Any) -> Any:
    if isinstance(value, dict):
        return {str(key): _jsonable(val) for key, val in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(val) for val in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


def phase_table(root: Optional[Span]) -> List[Dict[str, Any]]:
    """Aggregate the root span's direct children into the phase table.

    Phases are matched by span name — repeated spans of one phase (e.g.
    ``oipcreate`` per side) aggregate into one row — and listed in first
    -appearance order, which is execution order for a single-threaded
    driver.
    """
    if root is None:
        return []
    rows: List[Dict[str, Any]] = []
    index: Dict[str, Dict[str, Any]] = {}
    for child in root.children:
        row = index.get(child.name)
        if row is None:
            row = {"name": child.name, "duration_ms": 0.0, "spans": 0}
            index[child.name] = row
            rows.append(row)
        row["duration_ms"] += child.duration_ms
        row["spans"] += 1
    return rows


def build_report(
    result: Any,
    device: Any,
    weights: Any,
    root: Optional[Span] = None,
    span_count: int = 0,
    event_count: int = 0,
    governor: Optional[Dict[str, Any]] = None,
    metrics: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Assemble the report document for one executed join.

    *result* is the :class:`~repro.core.base.JoinResult`; *device* /
    *weights* the environment it ran under; *root* the run's root trace
    span (``None`` degrades to an empty stub tree so an un-traced report
    still validates).
    """
    execution = getattr(result, "execution", None)
    return {
        "version": REPORT_VERSION,
        "algorithm": result.algorithm,
        "elapsed_ms": float(getattr(result, "elapsed_ms", 0.0)),
        "completed": bool(result.completed),
        "result": {
            "pairs": len(result.pairs),
            "false_hit_ratio": result.counters.false_hit_ratio(),
        },
        "config": {
            "device": device.name,
            "weights": {"cpu": weights.cpu, "io": weights.io},
            "details": _jsonable(result.details),
        },
        "counters": result.counters.snapshot(),
        "resilience": result.resilience.snapshot(),
        "phases": phase_table(root),
        "trace": {
            "spans": span_count,
            "events": event_count,
            "root": span_tree(root),
        },
        "execution": (
            _jsonable(dataclasses.asdict(execution))
            if execution is not None
            else None
        ),
        "governor": _jsonable(governor) if governor is not None else None,
        "metrics": _jsonable(metrics) if metrics is not None else None,
        "index": (
            _jsonable(result.details["index"])
            if isinstance(getattr(result, "details", None), dict)
            and "index" in result.details
            else None
        ),
    }


# ----------------------------------------------------------------------
# Persistence.
# ----------------------------------------------------------------------


def dumps_report(report: Dict[str, Any]) -> str:
    """The canonical JSON serialization of a report (shared by
    :func:`write_report` and the CLI's ``--json`` output, so the bytes on
    disk and on stdout are identical for the same run)."""
    return json.dumps(report, indent=2, sort_keys=True) + "\n"


def write_report(report: Dict[str, Any], path: str) -> str:
    """Atomically write *report* as JSON; returns *path*."""
    tmp_path = f"{path}.tmp"
    with open(tmp_path, "w", encoding="utf-8") as handle:
        handle.write(dumps_report(report))
    os.replace(tmp_path, path)
    return path


def load_report(path: str) -> Dict[str, Any]:
    """Load and validate a run report from *path*."""
    with open(path, "r", encoding="utf-8") as handle:
        report = json.load(handle)
    validate_report(report)
    return report


def load_schema() -> Dict[str, Any]:
    """The checked-in run-report JSON schema."""
    global _SCHEMA
    if _SCHEMA is None:
        with open(_SCHEMA_PATH, "r", encoding="utf-8") as handle:
            _SCHEMA = json.load(handle)
    return _SCHEMA


# ----------------------------------------------------------------------
# Validation (dependency-free JSON-schema subset).
# ----------------------------------------------------------------------

_TYPES = {
    "object": dict,
    "array": list,
    "string": str,
    "boolean": bool,
    "null": type(None),
}


def _type_matches(value: Any, expected: str) -> bool:
    if expected == "number":
        return isinstance(value, (int, float)) and not isinstance(value, bool)
    if expected == "integer":
        return isinstance(value, int) and not isinstance(value, bool)
    return isinstance(value, _TYPES[expected])


def _resolve_ref(ref: str, root_schema: Dict[str, Any]) -> Dict[str, Any]:
    if not ref.startswith("#/"):
        raise ReportValidationError("$ref", f"unsupported reference {ref!r}")
    node: Any = root_schema
    for part in ref[2:].split("/"):
        node = node[part]
    return node


def _validate(
    value: Any,
    schema: Dict[str, Any],
    root_schema: Dict[str, Any],
    path: str,
) -> None:
    ref = schema.get("$ref")
    if ref is not None:
        _validate(value, _resolve_ref(ref, root_schema), root_schema, path)
        return
    expected = schema.get("type")
    if expected is not None:
        types = expected if isinstance(expected, list) else [expected]
        if not any(_type_matches(value, t) for t in types):
            raise ReportValidationError(
                path,
                f"expected type {' or '.join(types)}, "
                f"got {type(value).__name__}",
            )
    enum = schema.get("enum")
    if enum is not None and value not in enum:
        raise ReportValidationError(path, f"{value!r} not in enum {enum}")
    minimum = schema.get("minimum")
    if (
        minimum is not None
        and isinstance(value, (int, float))
        and not isinstance(value, bool)
        and value < minimum
    ):
        raise ReportValidationError(path, f"{value} is below minimum {minimum}")
    if isinstance(value, dict):
        for key in schema.get("required", ()):
            if key not in value:
                raise ReportValidationError(path, f"missing required key {key!r}")
        properties = schema.get("properties", {})
        additional = schema.get("additionalProperties", True)
        for key, item in value.items():
            key_path = f"{path}.{key}" if path else key
            if key in properties:
                _validate(item, properties[key], root_schema, key_path)
            elif isinstance(additional, dict):
                _validate(item, additional, root_schema, key_path)
            elif additional is False:
                raise ReportValidationError(
                    path, f"unexpected key {key!r}"
                )
    elif isinstance(value, list):
        items = schema.get("items")
        if items is not None:
            for position, item in enumerate(value):
                _validate(item, items, root_schema, f"{path}[{position}]")


def validate_report(
    report: Dict[str, Any], schema: Optional[Dict[str, Any]] = None
) -> None:
    """Validate *report* against the run-report schema; raises
    :class:`ReportValidationError` on the first violation."""
    if schema is None:
        schema = load_schema()
    _validate(report, schema, schema, "")
