"""Observability: phase tracing, metrics registry and run reports.

``repro.obs`` is the cross-cutting layer the join stack publishes into —
see ``trace`` (spans/events + JSONL sink), ``registry``
(counter/gauge/histogram with JSON and Prometheus exposition),
``report`` (the per-join JSON artifact + schema validator) and
``compare`` (diffing two reports).  Everything is optional and
pull-based: with no tracer/registry attached, the join layers run the
pre-observability code paths bit-identically.
"""

from .trace import (
    NULL_TRACER,
    JsonlSink,
    NullTracer,
    Span,
    TraceBuffer,
    TraceEvent,
    Tracer,
    new_trace_id,
    span_tree,
    stitch_traces,
)
from .registry import (
    DEFAULT_COUNT_BUCKETS,
    DEFAULT_LATENCY_BUCKETS_MS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from .report import (
    REPORT_VERSION,
    ReportValidationError,
    build_report,
    dumps_report,
    load_report,
    load_schema,
    phase_table,
    validate_report,
    write_report,
)
from .compare import (
    compare_reports,
    compare_stats,
    format_comparison,
    format_stats_comparison,
)
from .log import NULL_QUERY_LOG, NullQueryLog, QueryLog, read_log_lines
from .quantiles import (
    DEFAULT_QUANTILES,
    bucket_quantile,
    quantiles_from_counts,
    summarize_latency,
)
from .calibrate import (
    Calibration,
    CalibrationError,
    Observation,
    calibrate_reports,
    fit_observations,
    load_calibration,
    observation_from_report,
    save_calibration,
)

__all__ = [
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "Span",
    "TraceEvent",
    "JsonlSink",
    "span_tree",
    "new_trace_id",
    "TraceBuffer",
    "stitch_traces",
    "QueryLog",
    "NullQueryLog",
    "NULL_QUERY_LOG",
    "read_log_lines",
    "DEFAULT_QUANTILES",
    "bucket_quantile",
    "quantiles_from_counts",
    "summarize_latency",
    "Calibration",
    "CalibrationError",
    "Observation",
    "observation_from_report",
    "fit_observations",
    "calibrate_reports",
    "load_calibration",
    "save_calibration",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_COUNT_BUCKETS",
    "DEFAULT_LATENCY_BUCKETS_MS",
    "REPORT_VERSION",
    "ReportValidationError",
    "build_report",
    "dumps_report",
    "write_report",
    "load_report",
    "load_schema",
    "phase_table",
    "validate_report",
    "compare_reports",
    "format_comparison",
    "compare_stats",
    "format_stats_comparison",
]
