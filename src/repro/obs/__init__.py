"""Observability: phase tracing, metrics registry and run reports.

``repro.obs`` is the cross-cutting layer the join stack publishes into —
see ``trace`` (spans/events + JSONL sink), ``registry``
(counter/gauge/histogram with JSON and Prometheus exposition),
``report`` (the per-join JSON artifact + schema validator) and
``compare`` (diffing two reports).  Everything is optional and
pull-based: with no tracer/registry attached, the join layers run the
pre-observability code paths bit-identically.
"""

from .trace import (
    NULL_TRACER,
    JsonlSink,
    NullTracer,
    Span,
    TraceEvent,
    Tracer,
    span_tree,
)
from .registry import (
    DEFAULT_COUNT_BUCKETS,
    DEFAULT_LATENCY_BUCKETS_MS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from .report import (
    REPORT_VERSION,
    ReportValidationError,
    build_report,
    dumps_report,
    load_report,
    load_schema,
    phase_table,
    validate_report,
    write_report,
)
from .compare import compare_reports, format_comparison

__all__ = [
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "Span",
    "TraceEvent",
    "JsonlSink",
    "span_tree",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_COUNT_BUCKETS",
    "DEFAULT_LATENCY_BUCKETS_MS",
    "REPORT_VERSION",
    "ReportValidationError",
    "build_report",
    "dumps_report",
    "write_report",
    "load_report",
    "load_schema",
    "phase_table",
    "validate_report",
    "compare_reports",
    "format_comparison",
]
