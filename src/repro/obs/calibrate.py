"""Fit the paper's cost constants to this machine from run reports.

Section 6.2 of the paper models a join as ``cost = #cpu * c_cpu +
#io * c_io`` (Equation 2) and *assumes* constants for the two unit
costs (0.5 ns per comparison, 10 ns per 512-byte block in the
main-memory setting).  Figure 7 then shows the model tracking measured
runtime.  This module closes that loop for the reproduction: every
:func:`~repro.obs.report.build_report` artifact already records both
sides of the equation — the ``counters`` snapshot (``cpu_comparisons``,
``block_reads`` + ``block_writes``) and the measured ``elapsed_ms`` —
so a corpus of reports is a regression dataset, and the constants can
be *measured* per machine instead of guessed.

The fit is ordinary least squares through the origin (the model has no
constant term: zero work costs zero):

    minimize  sum_i (cpu_i * c_cpu + io_i * c_io - elapsed_i)^2

solved in closed form from the 2x2 normal equations.  Degenerate
corpora are handled explicitly:

* if the two predictors are collinear (or one never varies), the fit
  falls back to the single informative predictor;
* a negative fitted constant (possible when predictors correlate and
  noise dominates) is clamped to zero and the other constant refit —
  ``CostWeights`` requires non-negative weights.

Fitted constants are in **milliseconds per operation**; only their
ratio matters for the paper's ``k`` derivation, and their absolute
scale is exactly what turns the planner's modelled cost into a
predicted latency.  ``Calibration.to_weights()`` yields a
:class:`~repro.storage.metrics.CostWeights` that
:class:`~repro.engine.planner.JoinPlanner` and
:class:`~repro.core.join.OIPJoin` accept directly.

CLI:

    python -m repro calibrate report1.json report2.json ... \
        [--out calibration.json]
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

from ..storage.metrics import CostWeights
from .report import load_report

__all__ = [
    "CALIBRATION_VERSION",
    "Observation",
    "Calibration",
    "CalibrationError",
    "observation_from_report",
    "fit_observations",
    "calibrate_reports",
    "load_calibration",
    "save_calibration",
    "main",
]

CALIBRATION_VERSION = 1

#: Determinant below this (relative to the predictor scale) is treated
#: as collinear and triggers the single-predictor fallback.
_SINGULAR_EPS = 1e-12


class CalibrationError(ValueError):
    """Raised when a corpus cannot support a fit (empty, all-zero, ...)."""


@dataclass(frozen=True)
class Observation:
    """One report reduced to the cost model's regression row."""

    cpu: float
    io: float
    elapsed_ms: float
    source: str = ""


def observation_from_report(
    report: Dict[str, object], source: str = ""
) -> Observation:
    """Extract the Equation-2 predictors and response from a run report."""
    counters = report.get("counters")
    if not isinstance(counters, dict):
        raise CalibrationError(f"report {source or '<dict>'} has no counters")
    elapsed = report.get("elapsed_ms")
    if not isinstance(elapsed, (int, float)):
        raise CalibrationError(
            f"report {source or '<dict>'} has no elapsed_ms"
        )
    cpu = float(counters.get("cpu_comparisons", 0))
    io = float(counters.get("block_reads", 0)) + float(
        counters.get("block_writes", 0)
    )
    return Observation(cpu=cpu, io=io, elapsed_ms=float(elapsed), source=source)


@dataclass(frozen=True)
class Calibration:
    """Fitted per-machine cost constants, in milliseconds per operation."""

    cpu_ms: float
    io_ms: float
    r_squared: float
    samples: int
    residual_rms_ms: float

    def predict_ms(self, cpu: float, io: float) -> float:
        """Predicted latency for a (cpu, io) workload — Equation 2."""
        return cpu * self.cpu_ms + io * self.io_ms

    def to_weights(self) -> CostWeights:
        """The fitted constants as planner/join-ready cost weights."""
        if self.cpu_ms <= 0.0 and self.io_ms <= 0.0:
            raise CalibrationError(
                "calibration fitted both constants to zero; corpus carries "
                "no cost signal"
            )
        return CostWeights(cpu=self.cpu_ms, io=self.io_ms)

    def as_dict(self) -> Dict[str, object]:
        return {
            "kind": "cost_calibration",
            "version": CALIBRATION_VERSION,
            "cpu_ms": self.cpu_ms,
            "io_ms": self.io_ms,
            "r_squared": self.r_squared,
            "samples": self.samples,
            "residual_rms_ms": self.residual_rms_ms,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "Calibration":
        if data.get("kind") != "cost_calibration":
            raise CalibrationError(
                f"not a calibration document (kind={data.get('kind')!r})"
            )
        return cls(
            cpu_ms=float(data["cpu_ms"]),  # type: ignore[arg-type]
            io_ms=float(data["io_ms"]),  # type: ignore[arg-type]
            r_squared=float(data.get("r_squared", 0.0)),  # type: ignore[arg-type]
            samples=int(data.get("samples", 0)),  # type: ignore[arg-type]
            residual_rms_ms=float(data.get("residual_rms_ms", 0.0)),  # type: ignore[arg-type]
        )


def _fit_single(xs: List[float], ts: List[float]) -> float:
    """Least squares through the origin for one predictor; >= 0."""
    sxx = sum(x * x for x in xs)
    if sxx <= 0.0:
        return 0.0
    return max(0.0, sum(x * t for x, t in zip(xs, ts)) / sxx)


def fit_observations(observations: Sequence[Observation]) -> Calibration:
    """Solve the through-origin least-squares fit with degenerate fallbacks."""
    rows = [o for o in observations if o.elapsed_ms >= 0.0]
    if not rows:
        raise CalibrationError("no usable observations (need elapsed_ms >= 0)")
    cpus = [o.cpu for o in rows]
    ios = [o.io for o in rows]
    ts = [o.elapsed_ms for o in rows]
    if max(cpus, default=0.0) <= 0.0 and max(ios, default=0.0) <= 0.0:
        raise CalibrationError(
            "no usable observations (all counters are zero)"
        )

    sxx = sum(c * c for c in cpus)
    syy = sum(i * i for i in ios)
    sxy = sum(c * i for c, i in zip(cpus, ios))
    sxt = sum(c * t for c, t in zip(cpus, ts))
    syt = sum(i * t for i, t in zip(ios, ts))

    det = sxx * syy - sxy * sxy
    scale = max(sxx, syy, 1.0)
    if det <= _SINGULAR_EPS * scale * scale:
        # Collinear or single-predictor corpus: fit whichever predictor
        # carries variance; attribute all cost to it.
        if sxx >= syy:
            cpu_ms, io_ms = _fit_single(cpus, ts), 0.0
        else:
            cpu_ms, io_ms = 0.0, _fit_single(ios, ts)
    else:
        cpu_ms = (syy * sxt - sxy * syt) / det
        io_ms = (sxx * syt - sxy * sxt) / det
        # The model is physical: unit costs cannot be negative.  Clamp
        # and refit the surviving predictor so residuals stay optimal
        # within the constraint.
        if cpu_ms < 0.0 and io_ms < 0.0:
            cpu_ms = io_ms = 0.0
        elif cpu_ms < 0.0:
            cpu_ms, io_ms = 0.0, _fit_single(ios, ts)
        elif io_ms < 0.0:
            cpu_ms, io_ms = _fit_single(cpus, ts), 0.0

    residuals = [
        t - (c * cpu_ms + i * io_ms) for c, i, t in zip(cpus, ios, ts)
    ]
    ss_res = sum(r * r for r in residuals)
    mean_t = sum(ts) / len(ts)
    ss_tot = sum((t - mean_t) ** 2 for t in ts)
    r_squared = 1.0 - ss_res / ss_tot if ss_tot > 0.0 else (
        1.0 if ss_res == 0.0 else 0.0
    )
    rms = (ss_res / len(rows)) ** 0.5
    return Calibration(
        cpu_ms=cpu_ms,
        io_ms=io_ms,
        r_squared=r_squared,
        samples=len(rows),
        residual_rms_ms=rms,
    )


def calibrate_reports(paths: Iterable[str]) -> Calibration:
    """Load + validate each run report and fit the corpus."""
    observations = []
    for path in paths:
        observations.append(observation_from_report(load_report(path), path))
    return fit_observations(observations)


def save_calibration(path: str, calibration: Calibration) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(calibration.as_dict(), handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_calibration(path: str) -> Calibration:
    with open(path, "r", encoding="utf-8") as handle:
        return Calibration.from_dict(json.load(handle))


def format_calibration(calibration: Calibration) -> str:
    defaults = CostWeights.main_memory()
    lines = [
        f"samples          : {calibration.samples}",
        f"c_cpu            : {calibration.cpu_ms:.3e} ms/comparison",
        f"c_io             : {calibration.io_ms:.3e} ms/block",
        f"r^2              : {calibration.r_squared:.4f}",
        f"residual rms     : {calibration.residual_rms_ms:.3f} ms",
    ]
    if calibration.io_ms > 0.0:
        lines.append(
            f"cpu/io ratio     : {calibration.cpu_ms / calibration.io_ms:.4f}"
            f" (paper default {defaults.ratio:.4f})"
        )
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-calibrate",
        description=(
            "Fit cost-model CPU/IO constants (Equation 2) from run reports"
        ),
    )
    parser.add_argument("reports", nargs="+", help="run-report JSON files")
    parser.add_argument(
        "--out", help="write the fitted calibration JSON here"
    )
    parser.add_argument(
        "--json", action="store_true", help="print the calibration as JSON"
    )
    args = parser.parse_args(argv)
    try:
        calibration = calibrate_reports(args.reports)
    except (CalibrationError, OSError, ValueError) as error:
        print(f"calibration failed: {error}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(calibration.as_dict(), indent=2, sort_keys=True))
    else:
        print(format_calibration(calibration))
    if args.out:
        save_calibration(args.out, calibration)
        print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
