"""Deterministic quantile estimation over fixed histogram buckets.

The metrics registry's :class:`~repro.obs.registry.Histogram` stores
observations in a fixed, strictly-increasing bucket layout (plus an
implicit ``+Inf`` overflow bucket).  That layout is shared by every
process that ever records the metric, which makes the histogram
*mergeable*: summing per-bucket counts from two histograms yields
exactly the histogram that one process observing both streams would
have produced.  Quantiles estimated from the merged counts are then a
pure function of the bucket layout and the counts — no sampling, no
sketch randomness, no dependence on observation order.

The estimator is the classic Prometheus-style linear interpolation
within the target bucket:

* find the first bucket whose cumulative count reaches ``rank = q * n``;
* interpolate linearly between the bucket's lower and upper bound by
  the rank's position inside the bucket.

Determinism contract (pinned by ``tests/obs/test_quantiles.py``):

* the same multiset of observations yields the same quantiles
  regardless of observation order or of how the counts were merged;
* an observation exactly on a bucket boundary lands in the bucket whose
  *upper* bound it equals (matching ``Histogram.observe``'s
  ``bisect_left``), so ``quantile(1.0)`` of a single boundary value
  returns that value exactly;
* ranks that fall in the overflow bucket are clamped to the highest
  finite bound — the histogram cannot know how far past it the tail
  goes, and a stable under-estimate beats an unstable guess.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

__all__ = [
    "bucket_quantile",
    "quantiles_from_counts",
    "summarize_latency",
    "DEFAULT_QUANTILES",
]

#: The quantiles a latency summary reports by default.
DEFAULT_QUANTILES = (0.5, 0.95, 0.99)


def bucket_quantile(
    buckets: Sequence[float],
    cumulative: Sequence[int],
    q: float,
) -> float:
    """Estimate the ``q``-quantile from cumulative bucket counts.

    ``buckets`` are the finite upper bounds (strictly increasing) and
    ``cumulative`` the cumulative observation counts per bucket with one
    extra trailing entry for the ``+Inf`` overflow bucket — exactly the
    ``{"buckets", "counts"}`` shape of ``Histogram.snapshot()``.

    Returns ``0.0`` for an empty histogram.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q!r}")
    if len(cumulative) != len(buckets) + 1:
        raise ValueError(
            "cumulative counts must have one entry per bucket plus the "
            f"+Inf bucket: {len(buckets)} buckets, "
            f"{len(cumulative)} counts"
        )
    total = cumulative[-1] if cumulative else 0
    if total <= 0:
        return 0.0
    rank = q * total
    # The first bucket whose cumulative count reaches the rank holds the
    # quantile.  rank == 0 (q == 0) resolves to the first non-empty
    # bucket's lower edge via max(rank, epsilon)-free handling below.
    for index, bound in enumerate(buckets):
        count_here = cumulative[index]
        if count_here >= rank and count_here > 0:
            lower = buckets[index - 1] if index else 0.0
            prev = cumulative[index - 1] if index else 0
            in_bucket = count_here - prev
            if in_bucket <= 0:
                # Rank landed on a boundary shared with an empty bucket;
                # the value is exactly the previous bound.
                return lower
            position = (rank - prev) / in_bucket
            if position < 0.0:
                position = 0.0
            return lower + (bound - lower) * position
    # Overflow bucket: clamp to the highest finite bound.
    return buckets[-1] if buckets else 0.0


def quantiles_from_counts(
    buckets: Sequence[float],
    cumulative: Sequence[int],
    qs: Sequence[float] = DEFAULT_QUANTILES,
) -> Dict[str, float]:
    """Map ``p50``-style labels to estimates for each ``q`` in ``qs``."""
    out: Dict[str, float] = {}
    for q in qs:
        label = f"p{q * 100:g}".replace(".", "_")
        out[label] = bucket_quantile(buckets, cumulative, q)
    return out


def summarize_latency(
    snapshot: Dict[str, object],
    qs: Sequence[float] = DEFAULT_QUANTILES,
) -> Dict[str, float]:
    """Summarize a ``Histogram.snapshot()`` dict into count/mean/quantiles.

    The input shape is ``{"buckets": [...], "counts": [...cumulative...],
    "sum": float, "count": int}``; the output adds ``mean_ms`` alongside
    the requested quantiles so ``stats`` consumers never recompute it.
    """
    buckets: List[float] = list(snapshot.get("buckets", ()))  # type: ignore[arg-type]
    counts: List[int] = list(snapshot.get("counts", ()))  # type: ignore[arg-type]
    count = int(snapshot.get("count", 0))  # type: ignore[arg-type]
    total = float(snapshot.get("sum", 0.0))  # type: ignore[arg-type]
    summary: Dict[str, float] = {
        "count": count,
        "mean_ms": (total / count) if count else 0.0,
    }
    summary.update(
        {
            f"{label}_ms": value
            for label, value in quantiles_from_counts(
                buckets, counts, qs
            ).items()
        }
    )
    return summary
