"""Diff two run reports: counter deltas and phase-time regressions.

``repro compare base.json other.json`` (and the library entry point
:func:`compare_reports`) is how future PRs track the perf trajectory:
run the same workload before and after a change, write two reports,
diff them.  The diff has three sections:

* **counters** / **resilience** — exact integer deltas (these sections
  are deterministic, so any delta is a real behavior change, not noise);
* **phases** — wall-clock per-phase deltas with a relative change, and a
  ``regression`` flag for phases slower than *threshold* (default +10%);
* **headline** — elapsed time, result pairs and completion flags.

The same CLI also diffs **service stats** documents (the
``kind: "service_stats"`` JSON that ``python -m repro stats --json``
captures from a running server): per-endpoint and per-phase latency
quantiles are compared with the same regression threshold, so a
before/after pair of ``stats`` captures gates tail latency exactly the
way a pair of run reports gates phase time.  The document kind is
auto-detected; mixing a run report with a stats document is an error.

The exit-code contract mirrors the rest of the CLI: comparing reports is
informational, so :func:`main` exits 0 whenever both reports load and
validate, regressions or not — callers that want to gate on regressions
read the JSON (``--json``) or the table.
"""

from __future__ import annotations

import argparse
import json
from typing import Any, Dict, List, Optional, Sequence

from .report import load_report

__all__ = [
    "compare_reports",
    "format_comparison",
    "compare_stats",
    "format_stats_comparison",
    "main",
]

#: Relative phase slow-down above which the phase is flagged.
DEFAULT_REGRESSION_THRESHOLD = 0.10


def _counter_deltas(
    base: Dict[str, Any], other: Dict[str, Any]
) -> List[Dict[str, Any]]:
    rows = []
    for key in sorted(set(base) | set(other)):
        before = base.get(key, 0)
        after = other.get(key, 0)
        if before != after:
            rows.append(
                {"name": key, "base": before, "other": after,
                 "delta": after - before}
            )
    return rows


def _phase_deltas(
    base: Sequence[Dict[str, Any]],
    other: Sequence[Dict[str, Any]],
    threshold: float,
) -> List[Dict[str, Any]]:
    base_index = {row["name"]: row for row in base}
    other_index = {row["name"]: row for row in other}
    # Base order first, then phases only the other report has.
    names = [row["name"] for row in base]
    names += [row["name"] for row in other if row["name"] not in base_index]
    rows = []
    for name in names:
        before = base_index.get(name, {}).get("duration_ms", 0.0)
        after = other_index.get(name, {}).get("duration_ms", 0.0)
        delta = after - before
        ratio = (delta / before) if before > 0 else None
        rows.append(
            {
                "name": name,
                "base_ms": before,
                "other_ms": after,
                "delta_ms": delta,
                "ratio": ratio,
                "regression": ratio is not None and ratio > threshold,
            }
        )
    return rows


def compare_reports(
    base: Dict[str, Any],
    other: Dict[str, Any],
    threshold: float = DEFAULT_REGRESSION_THRESHOLD,
) -> Dict[str, Any]:
    """Structured diff of two (already validated) run reports."""
    return {
        "base_algorithm": base["algorithm"],
        "other_algorithm": other["algorithm"],
        "headline": {
            "elapsed_ms": {
                "base": base["elapsed_ms"],
                "other": other["elapsed_ms"],
                "delta": other["elapsed_ms"] - base["elapsed_ms"],
            },
            "pairs": {
                "base": base["result"]["pairs"],
                "other": other["result"]["pairs"],
                "delta": other["result"]["pairs"] - base["result"]["pairs"],
            },
            "completed": {
                "base": base["completed"],
                "other": other["completed"],
            },
        },
        "counters": _counter_deltas(base["counters"], other["counters"]),
        "resilience": _counter_deltas(
            base["resilience"], other["resilience"]
        ),
        "phases": _phase_deltas(
            base["phases"], other["phases"], threshold
        ),
        "regressions": sum(
            1
            for row in _phase_deltas(base["phases"], other["phases"], threshold)
            if row["regression"]
        ),
    }


def _fmt_ms(value: float) -> str:
    return f"{value:.3f}"


def format_comparison(comparison: Dict[str, Any]) -> str:
    """Human-readable table rendering of :func:`compare_reports`."""
    lines: List[str] = []
    lines.append(
        f"compare: {comparison['base_algorithm']} (base) vs "
        f"{comparison['other_algorithm']} (other)"
    )
    headline = comparison["headline"]
    elapsed = headline["elapsed_ms"]
    lines.append(
        f"  elapsed_ms: {_fmt_ms(elapsed['base'])} -> "
        f"{_fmt_ms(elapsed['other'])} ({elapsed['delta']:+.3f})"
    )
    pairs = headline["pairs"]
    lines.append(
        f"  pairs: {pairs['base']} -> {pairs['other']} ({pairs['delta']:+d})"
    )

    lines.append("phase times:")
    phase_rows = comparison["phases"]
    if not phase_rows:
        lines.append("  (no phases recorded)")
    else:
        width = max(len(row["name"]) for row in phase_rows)
        for row in phase_rows:
            rel = (
                f"{row['ratio'] * 100.0:+.1f}%"
                if row["ratio"] is not None
                else "n/a"
            )
            flag = "  REGRESSION" if row["regression"] else ""
            lines.append(
                f"  {row['name']:<{width}}  "
                f"{_fmt_ms(row['base_ms'])} -> {_fmt_ms(row['other_ms'])} ms  "
                f"({row['delta_ms']:+.3f} ms, {rel}){flag}"
            )

    for section in ("counters", "resilience"):
        rows = comparison[section]
        lines.append(f"{section} deltas:")
        if not rows:
            lines.append("  (identical)")
            continue
        width = max(len(row["name"]) for row in rows)
        for row in rows:
            lines.append(
                f"  {row['name']:<{width}}  "
                f"{row['base']} -> {row['other']} ({row['delta']:+d})"
            )
    return "\n".join(lines)


def _is_stats_document(document: Dict[str, Any]) -> bool:
    return document.get("kind") == "service_stats"


def _latency_deltas(
    base: Dict[str, Any],
    other: Dict[str, Any],
    threshold: float,
) -> List[Dict[str, Any]]:
    """Per-name quantile deltas for an ``endpoints``/``phases`` section."""
    rows: List[Dict[str, Any]] = []
    for name in sorted(set(base) | set(other)):
        before = base.get(name, {})
        after = other.get(name, {})
        row: Dict[str, Any] = {
            "name": name,
            "base_count": before.get("count", 0),
            "other_count": after.get("count", 0),
            "quantiles": [],
            "regression": False,
        }
        metrics = sorted(
            key
            for key in set(before) | set(after)
            if key.endswith("_ms")
        )
        for key in metrics:
            b = float(before.get(key, 0.0))
            o = float(after.get(key, 0.0))
            ratio = ((o - b) / b) if b > 0 else None
            regression = ratio is not None and ratio > threshold
            row["quantiles"].append(
                {
                    "metric": key,
                    "base_ms": b,
                    "other_ms": o,
                    "delta_ms": o - b,
                    "ratio": ratio,
                    "regression": regression,
                }
            )
            row["regression"] = row["regression"] or regression
        rows.append(row)
    return rows


def compare_stats(
    base: Dict[str, Any],
    other: Dict[str, Any],
    threshold: float = DEFAULT_REGRESSION_THRESHOLD,
) -> Dict[str, Any]:
    """Structured diff of two ``service_stats`` documents.

    Latency quantiles (every ``*_ms`` summary metric) are compared per
    endpoint and per phase; a quantile more than *threshold* slower in
    *other* flags that row — and the document — as a regression.
    Counters diff exactly, as in report comparison.
    """
    for name, document in (("base", base), ("other", other)):
        if not _is_stats_document(document):
            raise ValueError(
                f"{name} document is not service stats "
                f"(kind={document.get('kind')!r})"
            )
    endpoints = _latency_deltas(
        base.get("endpoints", {}), other.get("endpoints", {}), threshold
    )
    phases = _latency_deltas(
        base.get("phases", {}), other.get("phases", {}), threshold
    )
    return {
        "kind": "service_stats_comparison",
        "threshold": threshold,
        "endpoints": endpoints,
        "phases": phases,
        "counters": _counter_deltas(
            base.get("counters", {}), other.get("counters", {})
        ),
        "regressions": sum(
            1 for row in endpoints + phases if row["regression"]
        ),
    }


def _format_latency_section(
    title: str, rows: List[Dict[str, Any]], lines: List[str]
) -> None:
    lines.append(f"{title}:")
    if not rows:
        lines.append("  (none)")
        return
    for row in rows:
        lines.append(
            f"  {row['name']} (count {row['base_count']} -> "
            f"{row['other_count']})"
        )
        for quantile in row["quantiles"]:
            rel = (
                f"{quantile['ratio'] * 100.0:+.1f}%"
                if quantile["ratio"] is not None
                else "n/a"
            )
            flag = "  REGRESSION" if quantile["regression"] else ""
            lines.append(
                f"    {quantile['metric']:<10} "
                f"{_fmt_ms(quantile['base_ms'])} -> "
                f"{_fmt_ms(quantile['other_ms'])} ms ({rel}){flag}"
            )


def format_stats_comparison(comparison: Dict[str, Any]) -> str:
    """Human-readable rendering of :func:`compare_stats`."""
    lines: List[str] = [
        "compare: service stats (threshold "
        f"{comparison['threshold'] * 100.0:+.0f}%)"
    ]
    _format_latency_section("endpoints", comparison["endpoints"], lines)
    _format_latency_section("phases", comparison["phases"], lines)
    rows = comparison["counters"]
    lines.append("counter deltas:")
    if not rows:
        lines.append("  (identical)")
    else:
        width = max(len(row["name"]) for row in rows)
        for row in rows:
            lines.append(
                f"  {row['name']:<{width}}  "
                f"{row['base']} -> {row['other']} ({row['delta']:+d})"
            )
    lines.append(f"regressions: {comparison['regressions']}")
    return "\n".join(lines)


def _load_json(path: str) -> Dict[str, Any]:
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Stand-alone entry point (also reachable as ``repro compare A B``).

    Accepts either two run reports or two ``service_stats`` captures;
    the document kind is auto-detected.
    """
    parser = argparse.ArgumentParser(
        prog="repro-compare",
        description="Diff two run reports or two service stats captures.",
    )
    parser.add_argument("base", help="baseline JSON path")
    parser.add_argument("other", help="comparison JSON path")
    parser.add_argument(
        "--threshold",
        type=float,
        default=DEFAULT_REGRESSION_THRESHOLD,
        help="relative slow-down flagged as a regression "
        "(default %(default)s)",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit the diff as JSON"
    )
    args = parser.parse_args(argv)

    base_raw = _load_json(args.base)
    other_raw = _load_json(args.other)
    base_is_stats = _is_stats_document(base_raw)
    other_is_stats = _is_stats_document(other_raw)
    if base_is_stats != other_is_stats:
        print(
            "cannot compare a run report with a service stats capture: "
            f"{args.base} is "
            f"{'stats' if base_is_stats else 'a report'}, {args.other} is "
            f"{'stats' if other_is_stats else 'a report'}"
        )
        return 2
    if base_is_stats:
        comparison = compare_stats(base_raw, other_raw, args.threshold)
        formatted = format_stats_comparison(comparison)
    else:
        comparison = compare_reports(
            load_report(args.base), load_report(args.other), args.threshold
        )
        formatted = format_comparison(comparison)
    if args.json:
        print(json.dumps(comparison, indent=2, sort_keys=True))
    else:
        print(formatted)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
