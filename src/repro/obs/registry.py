"""Metrics registry: counters, gauges and fixed-bucket histograms.

The repo already *measures* everything the paper reports — the event
counts live in :class:`~repro.storage.metrics.CostCounters` /
:class:`~repro.storage.metrics.ResilienceCounters` — but each subsystem
grew its own reporting shape (``AdmissionStats``, ``ExecutionReport``,
checkpoint JSON).  The registry is the single sink they all publish
into, with two expositions:

* :meth:`MetricsRegistry.snapshot` / :meth:`MetricsRegistry.to_json` —
  a deterministic JSON document (sorted metric names, fixed histogram
  buckets), diffable run over run, and
* :meth:`MetricsRegistry.to_prometheus_text` — the Prometheus text
  format (names sanitised to ``[a-zA-Z0-9_:]``), so a service embedding
  the join can expose its internals on a ``/metrics`` endpoint.

Determinism is deliberate: histogram bucket boundaries are fixed at
construction (never rebalanced from data), so two runs with the same
seed export byte-identical snapshots — the property the observability
tests pin down and the ``repro compare`` diff relies on.

Publishers (all optional, all pull-based so the hot path stays
untouched): the storage manager, buffer pool, fault policy, admission
controller and circuit breaker each expose ``publish_metrics(registry)``;
:meth:`~repro.core.base.OverlapJoinAlgorithm.join` publishes its cost and
resilience counters after every run when a registry is attached.
"""

from __future__ import annotations

import json
import math
import re
from bisect import bisect_left
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_COUNT_BUCKETS",
    "DEFAULT_LATENCY_BUCKETS_MS",
    "merge_histogram_snapshots",
]

Number = Union[int, float]

#: Power-of-four boundaries for event-count distributions (candidate
#: comparisons per partition, tuples per partition, ...).  Fixed — never
#: derived from data — so exports are deterministic.
DEFAULT_COUNT_BUCKETS: Tuple[int, ...] = tuple(4 ** e for e in range(11))

#: Boundaries for wall-clock phase durations, in milliseconds.
DEFAULT_LATENCY_BUCKETS_MS: Tuple[float, ...] = (
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0,
    100.0, 250.0, 500.0, 1000.0, 2500.0, 5000.0, 10000.0,
)

_PROM_NAME = re.compile(r"[^a-zA-Z0-9_:]")


class Counter:
    """A monotonically increasing value."""

    kind = "counter"
    __slots__ = ("name", "help", "value")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.value: Number = 0

    def inc(self, amount: Number = 1) -> None:
        if amount < 0:
            raise ValueError(
                f"counter {self.name!r} cannot decrease (inc {amount})"
            )
        self.value += amount

    def snapshot(self) -> Number:
        return self.value


class Gauge:
    """A value that can go up and down (or be set outright)."""

    kind = "gauge"
    __slots__ = ("name", "help", "value")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.value: Number = 0

    def set(self, value: Number) -> None:
        self.value = value

    def inc(self, amount: Number = 1) -> None:
        self.value += amount

    def dec(self, amount: Number = 1) -> None:
        self.value -= amount

    def snapshot(self) -> Number:
        return self.value


class Histogram:
    """A fixed-boundary histogram (cumulative buckets on export).

    ``buckets`` are the inclusive upper bounds of the finite buckets; an
    implicit ``+Inf`` bucket catches the rest.  Boundaries are validated
    to be strictly increasing and are immutable afterwards — determinism
    of the exported snapshot is the whole point.
    """

    kind = "histogram"
    __slots__ = ("name", "help", "buckets", "counts", "total", "count")

    def __init__(
        self,
        name: str,
        buckets: Sequence[Number],
        help: str = "",
    ) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ValueError(f"histogram {name!r} needs at least one bucket")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError(
                f"histogram {name!r} bucket bounds must be strictly "
                f"increasing, got {bounds}"
            )
        if any(math.isnan(b) or math.isinf(b) for b in bounds):
            raise ValueError(
                f"histogram {name!r} bucket bounds must be finite"
            )
        self.name = name
        self.help = help
        self.buckets = bounds
        #: Per-bucket (non-cumulative) counts; last slot is +Inf.
        self.counts: List[int] = [0] * (len(bounds) + 1)
        self.total: float = 0.0
        self.count: int = 0

    def observe(self, value: Number) -> None:
        self.counts[bisect_left(self.buckets, value)] += 1
        self.total += value
        self.count += 1

    def snapshot(self) -> Dict[str, Any]:
        cumulative: List[int] = []
        running = 0
        for count in self.counts:
            running += count
            cumulative.append(running)
        return {
            "buckets": list(self.buckets),
            "counts": cumulative,
            "sum": self.total,
            "count": self.count,
        }

    def quantile(self, q: float) -> float:
        """Deterministic ``q``-quantile estimate from the fixed buckets.

        Linear interpolation inside the target bucket (see
        :mod:`repro.obs.quantiles`); a pure function of the bucket
        layout and counts, so merge order and observation order cannot
        change it.  Returns 0.0 while the histogram is empty.
        """
        from .quantiles import bucket_quantile

        snap = self.snapshot()
        return bucket_quantile(snap["buckets"], snap["counts"], q)


def merge_histogram_snapshots(
    a: Dict[str, Any], b: Dict[str, Any]
) -> Dict[str, Any]:
    """Merge two exported histogram snapshots with identical buckets.

    Cumulative per-bucket counts, ``sum`` and ``count`` add
    elementwise; because boundaries are fixed at construction, any two
    processes exporting the same metric name share the same layout and
    the merge is exact (not an approximation).  Used by the cross-worker
    ``stats`` aggregation, where each worker ships raw histograms and
    quantiles are computed only *after* the merge — summarised quantiles
    cannot be averaged, bucket counts can.
    """
    if list(a["buckets"]) != list(b["buckets"]):
        raise ValueError(
            "cannot merge histograms with different bucket layouts: "
            f"{a['buckets']} vs {b['buckets']}"
        )
    return {
        "buckets": list(a["buckets"]),
        "counts": [x + y for x, y in zip(a["counts"], b["counts"])],
        "sum": a["sum"] + b["sum"],
        "count": a["count"] + b["count"],
    }


_Metric = Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """Named metrics with get-or-create semantics.

    Re-requesting a name returns the existing instrument; requesting it
    as a different kind (or a histogram with different buckets) is a
    programming error and raises ``ValueError``.
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, _Metric] = {}

    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def get(self, name: str) -> Optional[_Metric]:
        return self._metrics.get(name)

    def _register(self, metric: _Metric) -> _Metric:
        existing = self._metrics.get(metric.name)
        if existing is None:
            self._metrics[metric.name] = metric
            return metric
        if existing.kind != metric.kind:
            raise ValueError(
                f"metric {metric.name!r} already registered as "
                f"{existing.kind}, requested {metric.kind}"
            )
        if (
            isinstance(existing, Histogram)
            and isinstance(metric, Histogram)
            and existing.buckets != metric.buckets
        ):
            raise ValueError(
                f"histogram {metric.name!r} already registered with "
                f"buckets {existing.buckets}"
            )
        return existing

    def counter(self, name: str, help: str = "") -> Counter:
        return self._register(Counter(name, help))  # type: ignore[return-value]

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._register(Gauge(name, help))  # type: ignore[return-value]

    def histogram(
        self,
        name: str,
        buckets: Sequence[Number] = DEFAULT_COUNT_BUCKETS,
        help: str = "",
    ) -> Histogram:
        return self._register(Histogram(name, buckets, help))  # type: ignore[return-value]

    # -- bulk publishing ------------------------------------------------

    def publish_dict(
        self, prefix: str, values: Dict[str, Number], kind: str = "counter"
    ) -> None:
        """Publish a flat ``{name: number}`` snapshot under *prefix*.

        Counters are *set-by-increment*: the delta to the published value
        is added, so re-publishing a monotone snapshot (e.g. the same
        run's counters at a later boundary) never double-counts.
        """
        for key, value in values.items():
            name = f"{prefix}.{key}" if prefix else key
            if kind == "gauge":
                self.gauge(name).set(value)
            else:
                counter = self.counter(name)
                delta = value - counter.value
                if delta > 0:
                    counter.inc(delta)

    # -- exposition -----------------------------------------------------

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """Deterministic plain-dict view, grouped by instrument kind and
        sorted by name."""
        counters: Dict[str, Any] = {}
        gauges: Dict[str, Any] = {}
        histograms: Dict[str, Any] = {}
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            if metric.kind == "counter":
                counters[name] = metric.snapshot()
            elif metric.kind == "gauge":
                gauges[name] = metric.snapshot()
            else:
                histograms[name] = metric.snapshot()
        return {
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    def to_prometheus_text(self) -> str:
        """The Prometheus text exposition format (spec 0.0.4)."""
        lines: List[str] = []
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            prom = _PROM_NAME.sub("_", name)
            if metric.help:
                lines.append(f"# HELP {prom} {metric.help}")
            lines.append(f"# TYPE {prom} {metric.kind}")
            if isinstance(metric, Histogram):
                snap = metric.snapshot()
                for bound, cumulative in zip(
                    snap["buckets"], snap["counts"]
                ):
                    lines.append(
                        f'{prom}_bucket{{le="{_format(bound)}"}} {cumulative}'
                    )
                lines.append(
                    f'{prom}_bucket{{le="+Inf"}} {snap["counts"][-1]}'
                )
                lines.append(f"{prom}_sum {_format(snap['sum'])}")
                lines.append(f"{prom}_count {snap['count']}")
            else:
                lines.append(f"{prom} {_format(metric.value)}")
        return "\n".join(lines) + ("\n" if lines else "")


def _format(value: Number) -> str:
    """Render numbers without a trailing ``.0`` for integral values."""
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return str(value)
