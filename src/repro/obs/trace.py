"""Phase-level tracing: structured spans and events for one join run.

The paper attributes performance to *where inside the join* work happens
— index build vs. probe (Section 6), partition accesses vs. false hits
(Section 7) — and the repo's counters only report end-of-run totals.
The tracer closes that gap: join phases open :class:`Span`\\ s (OIPCREATE
partitioning, Lemma-1 pair enumeration, the probe loop, parallel chunk
dispatch), and point-in-time occurrences (a storage retry, a governor
boundary check, a chunk downgrade) are recorded as :class:`TraceEvent`\\ s
attached to the innermost open span.

Two consumers are supported simultaneously:

* the **in-memory collector** — every tracer keeps its finished root
  spans on :attr:`Tracer.roots`; the run-report builder reads the span
  tree from there, and
* an optional **JSONL sink** — one JSON object per finished span and
  per event, written as they complete, for offline analysis
  (``repro join --trace spans.jsonl``).

Tracing off must cost (almost) nothing: the join layers hold a
:data:`NULL_TRACER` whose ``span()`` returns one preallocated no-op
context manager and whose ``event()`` is a constant ``None`` return — no
allocation, no timestamping, no branching beyond the call itself.  Hot
loops additionally guard on :attr:`Tracer.enabled` so per-partition
spans are skipped entirely when tracing is off.  The overhead budget
(<2% wall clock on the Figure 8 workload) is enforced by
``benchmarks/bench_obs_overhead.py``.

Spans form a tree per run via an explicit stack; the tracer is meant to
be driven from one thread (the join driver).  Worker processes/threads
of the parallel backend never see the tracer — the driver records chunk
lifecycle events on their behalf, which keeps the trace deterministic
in structure (span nesting and event kinds) even though durations are
wall-clock measurements.
"""

from __future__ import annotations

import json
import threading
import time
import uuid
from typing import Any, Dict, List, Optional, TextIO

__all__ = [
    "Span",
    "TraceEvent",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "JsonlSink",
    "span_tree",
    "new_trace_id",
    "TraceBuffer",
    "stitch_traces",
]


def new_trace_id() -> str:
    """A fresh 16-hex-char request trace id.

    Trace ids are opaque correlation tokens: the client stamps one on a
    wire request, the server threads it through its span tree, the
    query log and the response — so one id ties together everything a
    single request touched across both processes.
    """
    return uuid.uuid4().hex[:16]


class TraceEvent:
    """A point-in-time occurrence inside a span (retry, boundary check,
    chunk dispatch, ...)."""

    __slots__ = ("name", "at_ms", "attributes")

    def __init__(self, name: str, at_ms: float, attributes: Dict[str, Any]):
        self.name = name
        self.at_ms = at_ms
        self.attributes = attributes

    def as_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {"name": self.name, "at_ms": self.at_ms}
        if self.attributes:
            data["attributes"] = dict(self.attributes)
        return data

    def __repr__(self) -> str:
        return f"TraceEvent({self.name!r}, at_ms={self.at_ms:.3f})"


class Span:
    """One timed phase of a join run; spans nest into a tree.

    A span is also its own context manager *body* — :meth:`Tracer.span`
    returns the live span, ``with`` closes it — so callers can attach
    attributes discovered mid-phase::

        with tracer.span("oipcreate", side="outer") as span:
            ...
            span.set("partitions", partition_count)
    """

    __slots__ = (
        "name",
        "attributes",
        "children",
        "events",
        "start_ms",
        "end_ms",
        "_tracer",
    )

    def __init__(
        self,
        name: str,
        attributes: Dict[str, Any],
        start_ms: float,
        tracer: "Tracer",
    ) -> None:
        self.name = name
        self.attributes = attributes
        self.children: List["Span"] = []
        self.events: List[TraceEvent] = []
        self.start_ms = start_ms
        self.end_ms: Optional[float] = None
        self._tracer = tracer

    @property
    def duration_ms(self) -> float:
        """Wall-clock duration; 0.0 while the span is still open."""
        if self.end_ms is None:
            return 0.0
        return self.end_ms - self.start_ms

    def set(self, key: str, value: Any) -> None:
        """Attach one attribute to the span."""
        self.attributes[key] = value

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            self.attributes["error"] = exc_type.__name__
        self._tracer._finish(self)

    def as_dict(self) -> Dict[str, Any]:
        """The span subtree as plain JSON-ready dicts."""
        data: Dict[str, Any] = {
            "name": self.name,
            "start_ms": self.start_ms,
            "duration_ms": self.duration_ms,
        }
        if self.attributes:
            data["attributes"] = _jsonable(self.attributes)
        if self.events:
            data["events"] = [event.as_dict() for event in self.events]
        if self.children:
            data["children"] = [child.as_dict() for child in self.children]
        return data

    def __repr__(self) -> str:
        state = "open" if self.end_ms is None else f"{self.duration_ms:.3f}ms"
        return f"Span({self.name!r}, {state}, children={len(self.children)})"


def _jsonable(value: Any) -> Any:
    """Coerce attribute values into JSON-representable shapes."""
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


class JsonlSink:
    """Streams finished spans and events as JSON lines.

    Each line is ``{"kind": "span"|"event", ...}``; spans carry their
    full subtree (children were finished earlier as their own lines too,
    so a consumer may use either the ``root`` lines or the flat stream).
    The sink owns its file handle; call :meth:`close` (the CLI does)
    when the run is over.
    """

    def __init__(self, path: str) -> None:
        self.path = str(path)
        self._handle: Optional[TextIO] = open(self.path, "w", encoding="utf-8")
        self.lines_written = 0

    def emit(self, kind: str, payload: Dict[str, Any]) -> None:
        if self._handle is None:
            return
        record = {"kind": kind}
        record.update(payload)
        self._handle.write(json.dumps(record, separators=(",", ":")))
        self._handle.write("\n")
        self.lines_written += 1

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None


class Tracer:
    """Collects a span tree (and optionally streams it to a sink).

    ``roots`` accumulates the finished top-level spans, one per traced
    join run when the tracer is reused across runs.  ``clock`` is
    injectable for deterministic tests (defaults to
    :func:`time.perf_counter`).
    """

    enabled = True

    def __init__(
        self,
        sink: Optional[JsonlSink] = None,
        clock=time.perf_counter,
        trace_id: Optional[str] = None,
        max_depth: Optional[int] = None,
    ) -> None:
        self._sink = sink
        self._clock = clock
        self._origin = clock()
        #: Correlation id stamped onto every finished root span.
        self.trace_id = trace_id
        #: Nesting cap: ``span()`` calls at or below ``max_depth`` open
        #: real spans, deeper calls get the shared no-op span.  A
        #: serving-path tracer caps at phase granularity so per-partition
        #: spans (thousands per probe) never tax a live query.
        self.max_depth = max_depth
        self._stack: List[Span] = []
        #: Finished top-level spans, oldest first.
        self.roots: List[Span] = []
        #: Spans finished over the tracer's lifetime.
        self.span_count = 0
        #: Events recorded over the tracer's lifetime.
        self.event_count = 0

    def _now_ms(self) -> float:
        return (self._clock() - self._origin) * 1000.0

    @property
    def saturated(self) -> bool:
        """True when the next ``span()`` would exceed :attr:`max_depth`.

        Hot loops guard on this (alongside :attr:`enabled`) so a
        depth-capped request trace skips per-partition instrumentation
        at loop setup instead of paying a no-op call per partition."""
        return (
            self.max_depth is not None
            and len(self._stack) >= self.max_depth
        )

    def span(self, name: str, **attributes: Any) -> Any:
        """Open a child span of the innermost open span (or the no-op
        span past :attr:`max_depth`)."""
        if self.max_depth is not None and len(self._stack) >= self.max_depth:
            return _NOOP_SPAN
        span = Span(name, attributes, self._now_ms(), self)
        self._stack.append(span)
        return span

    def event(self, name: str, **attributes: Any) -> TraceEvent:
        """Record a point-in-time event on the innermost open span (or as
        a free-standing root event when no span is open)."""
        event = TraceEvent(name, self._now_ms(), attributes)
        self.event_count += 1
        if self._stack:
            self._stack[-1].events.append(event)
        if self._sink is not None:
            self._sink.emit("event", event.as_dict())
        return event

    def _finish(self, span: Span) -> None:
        span.end_ms = self._now_ms()
        self.span_count += 1
        # Unwind to the finished span; tolerates a child left open by an
        # exception unwinding through several spans at once.
        while self._stack:
            top = self._stack.pop()
            if top.end_ms is None:
                top.end_ms = span.end_ms
                self.span_count += 1
            parent = self._stack[-1] if self._stack else None
            if parent is not None:
                parent.children.append(top)
            else:
                if self.trace_id and "trace_id" not in top.attributes:
                    top.attributes["trace_id"] = self.trace_id
                self.roots.append(top)
                if self._sink is not None:
                    self._sink.emit("span", top.as_dict())
            if top is span:
                break

    @property
    def last_root(self) -> Optional[Span]:
        """The most recently finished top-level span."""
        return self.roots[-1] if self.roots else None

    def close(self) -> None:
        """Close the attached sink, if any."""
        if self._sink is not None:
            self._sink.close()

    def __repr__(self) -> str:
        return (
            f"Tracer(spans={self.span_count}, events={self.event_count}, "
            f"open={len(self._stack)})"
        )


class _NoopSpan:
    """The shared do-nothing span of :class:`NullTracer`."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None

    def set(self, key: str, value: Any) -> None:
        return None

    name = "noop"
    children: List[Any] = []
    events: List[Any] = []
    attributes: Dict[str, Any] = {}
    duration_ms = 0.0

    def as_dict(self) -> Dict[str, Any]:
        return {"name": "noop", "start_ms": 0.0, "duration_ms": 0.0}


_NOOP_SPAN = _NoopSpan()


class NullTracer:
    """The zero-allocation disabled tracer.

    ``span()`` hands back one preallocated no-op context manager and
    ``event()`` returns ``None`` — no timestamps, no objects, no sink.
    All join layers default to the module singleton :data:`NULL_TRACER`,
    and their hot loops additionally skip per-partition instrumentation
    when ``tracer.enabled`` is false.
    """

    enabled = False
    saturated = False
    roots: List[Any] = []
    span_count = 0
    event_count = 0
    last_root = None
    trace_id: Optional[str] = None

    __slots__ = ()

    def span(self, name: str, **attributes: Any) -> _NoopSpan:
        return _NOOP_SPAN

    def event(self, name: str, **attributes: Any) -> None:
        return None

    def close(self) -> None:
        return None

    def __repr__(self) -> str:
        return "NullTracer()"


#: Shared disabled tracer; identity-comparable (`tracer is NULL_TRACER`).
NULL_TRACER = NullTracer()


def span_tree(span: Optional[Span]) -> Dict[str, Any]:
    """The JSON-ready tree of *span* (an empty stub for ``None``)."""
    if span is None:
        return {"name": "join", "start_ms": 0.0, "duration_ms": 0.0}
    return span.as_dict()


class TraceBuffer:
    """Thread-safe ring of recently finished trace trees.

    The service deposits each request's finished root span (as a
    JSON-ready dict) here; the ``tracedump`` wire command reads them
    back.  Bounded so an unwatched server never grows without limit —
    when full, the oldest trace is evicted and counted in ``dropped``.
    """

    def __init__(self, capacity: int = 256) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._traces: List[Dict[str, Any]] = []
        self.dropped = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._traces)

    def add(self, tree: Dict[str, Any]) -> None:
        with self._lock:
            self._traces.append(tree)
            if len(self._traces) > self.capacity:
                del self._traces[0]
                self.dropped += 1

    def dump(
        self,
        trace_id: Optional[str] = None,
        limit: Optional[int] = None,
    ) -> List[Dict[str, Any]]:
        """Matching traces, oldest first (optionally only the last *limit*)."""
        with self._lock:
            traces = list(self._traces)
        if trace_id is not None:
            traces = [
                tree
                for tree in traces
                if tree.get("attributes", {}).get("trace_id") == trace_id
            ]
        if limit is not None and limit >= 0:
            traces = traces[-limit:]
        return traces

    def clear(self) -> None:
        with self._lock:
            self._traces.clear()


def _find_trace_node(
    tree: Dict[str, Any], trace_id: str
) -> Optional[Dict[str, Any]]:
    if tree.get("attributes", {}).get("trace_id") == trace_id:
        return tree
    for child in tree.get("children", ()):  # type: ignore[union-attr]
        found = _find_trace_node(child, trace_id)
        if found is not None:
            return found
    return None


def stitch_traces(
    client_tree: Dict[str, Any], server_tree: Dict[str, Any]
) -> Dict[str, Any]:
    """Graft a server span tree under the client span sharing its trace id.

    Both trees are JSON-ready dicts (``Span.as_dict()`` shape).  The
    server tree is attached as a child of the client span whose
    ``attributes.trace_id`` matches the server root's — the wire hop the
    request travelled — producing the single end-to-end tree the
    integration tests assert on.  Raises ``ValueError`` when the trees
    do not share a trace id.
    """
    trace_id = server_tree.get("attributes", {}).get("trace_id")
    if not trace_id:
        raise ValueError("server trace carries no trace_id attribute")
    merged = json.loads(json.dumps(client_tree))
    anchor = _find_trace_node(merged, trace_id)
    if anchor is None:
        raise ValueError(
            f"client trace has no span with trace_id={trace_id!r}"
        )
    anchor.setdefault("children", []).append(server_tree)
    return merged
