"""Structured NDJSON query log with sampling and a slow-query lane.

The service emits one JSON object per line (NDJSON) describing a
lifecycle event: a query admitted, completed, shed, retried against a
faulty block device, a snapshot swapped, a drain finished.  The sink is
designed for the serving hot path:

* **Atomic lines.**  Each record is serialized first and written with a
  single ``write()`` call under a lock, then flushed.  Concurrent
  writers (query threads, the SIGHUP refresh handler, the drain path)
  can interleave *lines* but never tear one — a reader doing
  ``json.loads`` per line always succeeds.  Pinned by the chaos suite.
* **Deterministic sampling.**  High-frequency events (per-query
  completion at tens of thousands of QPS) can be downsampled.  The
  decision hashes the record's ``trace_id`` (CRC32 against a fixed
  threshold), so the *same* trace is either fully present or fully
  absent — no half-logged traces — and a replay of the same trace ids
  reproduces the same log.  Records without a trace id and records at
  ``warning`` or above always pass.
* **Slow-query lane.**  ``query()`` events whose ``elapsed_ms`` exceeds
  the configured threshold are re-emitted at ``warning`` severity with
  ``slow: true`` — they bypass sampling, so the tail is always visible
  even when the bulk is sampled away.

Events are plain dicts; severity gating follows syslog-ish levels
``debug < info < warning < error``.  The :data:`NULL_QUERY_LOG`
singleton swallows everything without serializing, so telemetry-off
call sites pay one truthiness check.
"""

from __future__ import annotations

import io
import json
import threading
import zlib
from typing import IO, Any, Dict, Optional

__all__ = [
    "QueryLog",
    "NullQueryLog",
    "NULL_QUERY_LOG",
    "LEVELS",
    "read_log_lines",
]

#: Severity order; gate with ``LEVELS[level] >= LEVELS[min_level]``.
LEVELS: Dict[str, int] = {"debug": 10, "info": 20, "warning": 30, "error": 40}

_SAMPLE_SPACE = 1 << 32


def _sample_passes(trace_id: str, rate: float) -> bool:
    """Deterministic per-trace coin flip: keep iff crc32 falls under rate."""
    if rate >= 1.0:
        return True
    if rate <= 0.0:
        return False
    digest = zlib.crc32(trace_id.encode("utf-8")) & 0xFFFFFFFF
    return digest < int(rate * _SAMPLE_SPACE)


class QueryLog:
    """Append-only NDJSON event sink.

    Parameters
    ----------
    stream:
        Text stream to append to.  Exactly one ``write()`` call is
        issued per record while holding the sink lock.
    path:
        Convenience alternative to ``stream``: open this file for
        appending (line-buffered close on :meth:`close`).
    min_level:
        Drop records below this severity before serializing.
    sample_rate:
        Keep fraction for *sampled* events (``emit(..., sampled=True)``).
        Hashed from the trace id, so sampling is deterministic and
        whole-trace.  Unsampled events and ``warning``+ always pass.
    slow_query_ms:
        Threshold for the slow-query lane; ``None`` disables it.
    clock:
        Monotonic-ish timestamp source recorded as ``ts``; injectable
        for deterministic tests.
    """

    def __init__(
        self,
        stream: Optional[IO[str]] = None,
        *,
        path: Optional[str] = None,
        min_level: str = "info",
        sample_rate: float = 1.0,
        slow_query_ms: Optional[float] = None,
        clock=None,
    ) -> None:
        if (stream is None) == (path is None):
            raise ValueError("provide exactly one of stream= or path=")
        if min_level not in LEVELS:
            raise ValueError(
                f"unknown level {min_level!r}; expected one of "
                f"{sorted(LEVELS)}"
            )
        if not 0.0 <= sample_rate <= 1.0:
            raise ValueError(f"sample_rate must be in [0, 1]: {sample_rate}")
        if slow_query_ms is not None and slow_query_ms < 0:
            raise ValueError(f"slow_query_ms must be >= 0: {slow_query_ms}")
        self._owns_stream = stream is None
        self._stream: IO[str] = (
            open(path, "a", encoding="utf-8") if stream is None else stream
        )
        self._lock = threading.Lock()
        self._min_level = LEVELS[min_level]
        self._sample_rate = sample_rate
        self.slow_query_ms = slow_query_ms
        if clock is None:
            import time

            clock = time.time
        self._clock = clock
        self.emitted = 0
        self.dropped = 0

    # -- predicates ------------------------------------------------------

    def __bool__(self) -> bool:
        return True

    @property
    def enabled(self) -> bool:
        return True

    def is_slow(self, elapsed_ms: Optional[float]) -> bool:
        return (
            self.slow_query_ms is not None
            and elapsed_ms is not None
            and elapsed_ms >= self.slow_query_ms
        )

    # -- emission --------------------------------------------------------

    def emit(
        self,
        event: str,
        *,
        level: str = "info",
        trace_id: Optional[str] = None,
        sampled: bool = False,
        **fields: Any,
    ) -> bool:
        """Append one event line; return whether it was written.

        ``sampled=True`` marks the event as hot-path: it is subject to
        the deterministic per-trace sample rate unless its severity is
        ``warning`` or higher.
        """
        severity = LEVELS.get(level)
        if severity is None:
            raise ValueError(f"unknown level {level!r}")
        if severity < self._min_level:
            self.dropped += 1
            return False
        if (
            sampled
            and severity < LEVELS["warning"]
            and trace_id is not None
            and not _sample_passes(trace_id, self._sample_rate)
        ):
            self.dropped += 1
            return False
        record: Dict[str, Any] = {
            "level": level,
            "event": event,
        }
        if trace_id is not None:
            record["trace_id"] = trace_id
        record.update(fields)
        with self._lock:
            # The timestamp is taken under the lock so ``ts`` order
            # always matches line order, and one write is issued per
            # record: concurrent emitters interleave whole lines, never
            # fragments.
            record["ts"] = self._clock()
            line = json.dumps(record, sort_keys=True, separators=(",", ":"))
            self._stream.write(line + "\n")
            self._stream.flush()
            self.emitted += 1
        return True

    def query_event(
        self,
        event: str,
        *,
        trace_id: Optional[str],
        elapsed_ms: Optional[float] = None,
        level: str = "info",
        **fields: Any,
    ) -> None:
        """Emit a per-query event, promoting slow queries out of sampling.

        The fast path is sampled at ``sample_rate``; a query over the
        slow threshold is logged at ``warning`` with ``slow: true`` and
        therefore always kept.
        """
        if elapsed_ms is not None:
            fields["elapsed_ms"] = elapsed_ms
        if self.is_slow(elapsed_ms):
            self.emit(
                event,
                level="warning",
                trace_id=trace_id,
                sampled=False,
                slow=True,
                **fields,
            )
            return
        self.emit(event, level=level, trace_id=trace_id, sampled=True, **fields)

    def close(self) -> None:
        if self._owns_stream:
            self._stream.close()


class NullQueryLog:
    """No-op stand-in: falsy, swallows every event without serializing."""

    slow_query_ms: Optional[float] = None
    emitted = 0
    dropped = 0

    def __bool__(self) -> bool:
        return False

    @property
    def enabled(self) -> bool:
        return False

    def is_slow(self, elapsed_ms: Optional[float]) -> bool:
        return False

    def emit(self, event: str, **fields: Any) -> bool:  # noqa: ARG002
        return False

    def query_event(self, event: str, **fields: Any) -> None:  # noqa: ARG002
        return None

    def close(self) -> None:
        return None


#: Shared no-op sink; call sites default to this and pay one branch.
NULL_QUERY_LOG = NullQueryLog()


def read_log_lines(source) -> list:
    """Parse an NDJSON log from a path or text stream; raise on torn lines.

    Used by tests and ad-hoc analysis: every non-empty line must be a
    complete JSON object (the atomic-write guarantee).
    """
    if isinstance(source, (str, bytes)):
        with open(source, "r", encoding="utf-8") as handle:
            text = handle.read()
    elif isinstance(source, io.TextIOBase) or hasattr(source, "read"):
        text = source.read()
    else:
        raise TypeError(f"expected path or stream, got {type(source)!r}")
    records = []
    for number, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            records.append(json.loads(line))
        except ValueError as error:
            raise ValueError(
                f"torn or invalid NDJSON at line {number}: {line[:80]!r}"
            ) from error
    return records
