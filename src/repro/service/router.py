"""Time-shard scatter-gather execution for served overlap joins.

The paper's granule framing partitions the *time domain*, not the data:
a tuple belongs to every granule its interval touches.  This module
applies the same idea one level up — the whole query domain is split
into contiguous **shard ranges**, each shard receives the slice of both
relations that overlaps its range (boundary-spanning tuples replicated
into every shard they touch), and an independent OIPJOIN runs per shard.

**Merge with dedup.**  A pair whose tuples both span a shard boundary
is discovered by several shards.  Rather than a post-merge hash set
over the (potentially huge) result, each shard *owns* exactly the pairs
whose overlap region **starts** inside its range: the first overlapped
point of a pair ``(r, s)`` is ``max(r.start, s.start)``, both tuples
cover that point, so the owning shard is guaranteed to discover the
pair — and because the ranges tile the domain without gap or overlap,
every pair is owned by exactly one shard.  Concatenating the owned
pairs in shard order therefore reproduces the unsharded result as a
multiset — same pairs, same canonical fingerprint — with zero
duplicates and zero losses, which the differential suite pins against
the unsharded service.

**Skew.**  Real time domains are not uniform; per-shard tuple counts,
result sizes and latencies are reported through the
``service.router.*`` metric family and in the merged result's details,
so an operator can see a hot shard before it becomes the straggler
that defines query latency.

Shard plans come from :func:`shard_ranges` (equal-width split of the
domain) or from explicit operator-supplied ranges validated by
:func:`validate_shard_ranges` — overlapping or gapped plans are a
configuration error, rejected at ``serve`` startup.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..core.relation import TemporalRelation
from ..engine.parallel import map_tasks, merge_counters
from ..obs.registry import DEFAULT_LATENCY_BUCKETS_MS
from ..obs.trace import NULL_TRACER
from ..storage.metrics import CostCounters, ResilienceCounters
from .errors import ScaleOutConfigError

__all__ = [
    "shard_ranges",
    "validate_shard_ranges",
    "shard_slice",
    "MergedShardResult",
    "TimeShardRouter",
]

#: Upper bound on one query's shard fan-out; past this the per-shard
#: OIPCREATE overhead dwarfs any probe-side win.
MAX_SHARDS = 4096


def shard_ranges(
    domain: Tuple[int, int], shards: int
) -> List[Tuple[int, int]]:
    """Split ``[lo, hi]`` into at most *shards* contiguous, gapless,
    non-overlapping integer ranges of near-equal width."""
    lo, hi = int(domain[0]), int(domain[1])
    if hi < lo:
        raise ScaleOutConfigError(
            f"time domain end {hi} precedes start {lo}"
        )
    if shards < 1:
        raise ScaleOutConfigError(f"shards must be >= 1, got {shards}")
    points = hi - lo + 1
    count = min(int(shards), points, MAX_SHARDS)
    width, remainder = divmod(points, count)
    ranges: List[Tuple[int, int]] = []
    cursor = lo
    for index in range(count):
        span = width + (1 if index < remainder else 0)
        ranges.append((cursor, cursor + span - 1))
        cursor += span
    return ranges


def validate_shard_ranges(
    ranges: Sequence[Sequence[int]],
    domain: Optional[Tuple[int, int]] = None,
) -> List[Tuple[int, int]]:
    """Normalize and validate an explicit shard plan.

    Ranges are sorted, then checked: integer ``[lo, hi]`` pairs with
    ``lo <= hi``, no overlap, no gap between consecutive ranges, and —
    when *domain* is known — exact coverage of the domain (a plan that
    starts late or stops early would silently lose result pairs, so it
    is rejected instead).  Raises :class:`ScaleOutConfigError`.
    """
    if not ranges:
        raise ScaleOutConfigError("shard plan is empty")
    if len(ranges) > MAX_SHARDS:
        raise ScaleOutConfigError(
            f"shard plan has {len(ranges)} ranges; the maximum is "
            f"{MAX_SHARDS}"
        )
    normalized: List[Tuple[int, int]] = []
    for entry in ranges:
        try:
            lo, hi = int(entry[0]), int(entry[1])
        except (TypeError, ValueError, IndexError):
            raise ScaleOutConfigError(
                f"shard range {entry!r} is not a [lo, hi] integer pair"
            ) from None
        if hi < lo:
            raise ScaleOutConfigError(
                f"shard range [{lo}, {hi}] ends before it starts"
            )
        normalized.append((lo, hi))
    normalized.sort()
    for (prev_lo, prev_hi), (next_lo, next_hi) in zip(
        normalized, normalized[1:]
    ):
        if next_lo <= prev_hi:
            raise ScaleOutConfigError(
                f"shard ranges [{prev_lo}, {prev_hi}] and "
                f"[{next_lo}, {next_hi}] overlap",
                detail={"kind": "overlap"},
            )
        if next_lo != prev_hi + 1:
            raise ScaleOutConfigError(
                f"gap between shard ranges [{prev_lo}, {prev_hi}] and "
                f"[{next_lo}, {next_hi}]: points "
                f"{prev_hi + 1}..{next_lo - 1} belong to no shard",
                detail={"kind": "gap"},
            )
    if domain is not None:
        lo, hi = int(domain[0]), int(domain[1])
        if normalized[0][0] > lo or normalized[-1][1] < hi:
            raise ScaleOutConfigError(
                f"shard plan [{normalized[0][0]}, {normalized[-1][1]}] "
                f"does not cover the time domain [{lo}, {hi}]",
                detail={"kind": "coverage"},
            )
    return normalized


def shard_slice(
    relation: TemporalRelation, lo: int, hi: int
) -> TemporalRelation:
    """The slice of *relation* overlapping ``[lo, hi]``.

    Tuples are shared by reference (never copied), so a
    boundary-spanning tuple is *replicated* — present in every shard it
    touches — exactly as the paper's granule framing replicates tuples
    across the granules their intervals span.
    """
    return TemporalRelation(
        (t for t in relation if t.start <= hi and lo <= t.end),
        name=f"{relation.name}[{lo},{hi}]",
    )


@dataclass
class MergedShardResult:
    """The gather half: per-shard results folded into one answer with
    the same surface :func:`~repro.service.service.summarize_result`
    reads off a plain :class:`~repro.core.base.JoinResult`."""

    algorithm: str
    pairs: List[Any]
    counters: CostCounters
    details: Dict[str, Any] = field(default_factory=dict)
    resilience: ResilienceCounters = field(default_factory=ResilienceCounters)
    completed: bool = True
    elapsed_ms: float = 0.0
    report: Optional[Dict[str, Any]] = None

    def __len__(self) -> int:
        return len(self.pairs)

    @property
    def cardinality(self) -> int:
        return len(self.pairs)


class TimeShardRouter:
    """Scatter a join over a shard plan, gather with ownership dedup.

    ``join_factory`` (per :meth:`execute` call) builds a fresh join for
    each shard so per-shard state (storage managers, kernels,
    checkpoints) is never shared across concurrent shards; the factory
    closes over whatever budget/cancellation/fault machinery the caller
    wants every shard to honour.
    """

    def __init__(
        self,
        *,
        shards: Optional[int] = None,
        ranges: Optional[Sequence[Sequence[int]]] = None,
        backend: str = "thread",
        max_workers: Optional[int] = None,
        metrics: Any = None,
    ) -> None:
        if (shards is None) == (ranges is None):
            raise ScaleOutConfigError(
                "pass exactly one of shards (equal-width plan) or "
                "ranges (explicit plan)"
            )
        if shards is not None and not 1 <= int(shards) <= MAX_SHARDS:
            raise ScaleOutConfigError(
                f"shards must be in [1, {MAX_SHARDS}], got {shards}"
            )
        self.shards = None if shards is None else int(shards)
        self.ranges = (
            None if ranges is None else validate_shard_ranges(ranges)
        )
        if backend == "process":
            # Shard tasks close over per-query service state — the
            # budget, cancellation token and circuit breaker shared by
            # join_factory — none of which can cross a process
            # boundary, so ProcessPoolExecutor would fail at pickling
            # time on the first query.  Reject the configuration up
            # front instead; cross-process scale-out is what the
            # worker pool (``serve --workers``) provides.
            raise ScaleOutConfigError(
                "the 'process' shard backend is not supported: shard "
                "tasks share in-process query state (budget, "
                "cancellation, breaker) that cannot be pickled; use "
                "backend='thread' for sharding within a process, or "
                "scale across processes with serve --workers"
            )
        if backend not in ("thread", "inline"):
            raise ScaleOutConfigError(
                f"unknown shard backend {backend!r}"
            )
        self.backend = backend
        self.max_workers = max_workers
        self.metrics = metrics

    # -- planning ------------------------------------------------------------

    @staticmethod
    def domain_of(
        outer: TemporalRelation, inner: TemporalRelation
    ) -> Tuple[int, int]:
        """The joint time domain both shard plans must cover."""
        outer_range = outer.time_range
        inner_range = inner.time_range
        return (
            min(outer_range.start, inner_range.start),
            max(outer_range.end, inner_range.end),
        )

    def plan(
        self, outer: TemporalRelation, inner: TemporalRelation
    ) -> List[Tuple[int, int]]:
        """The shard plan for this relation pair; explicit ranges are
        re-validated for coverage against the *actual* domain so a
        stale plan cannot silently lose pairs."""
        domain = self.domain_of(outer, inner)
        if self.ranges is not None:
            return validate_shard_ranges(self.ranges, domain)
        return shard_ranges(domain, self.shards or 1)

    # -- execution -----------------------------------------------------------

    def execute(
        self,
        outer: TemporalRelation,
        inner: TemporalRelation,
        *,
        join_factory: Callable[[], Any],
        tracer: Any = NULL_TRACER,
    ) -> MergedShardResult:
        started = time.perf_counter()
        plan = self.plan(outer, inner)
        with tracer.span("router.scatter", shards=len(plan)):
            slices = [
                (
                    lo,
                    hi,
                    shard_slice(outer, lo, hi),
                    shard_slice(inner, lo, hi),
                )
                for lo, hi in plan
            ]

        def run_shard(task: Tuple[int, int, Any, Any]) -> Dict[str, Any]:
            lo, hi, shard_outer, shard_inner = task
            shard_started = time.perf_counter()
            if len(shard_outer) == 0 or len(shard_inner) == 0:
                return {
                    "range": (lo, hi),
                    "pairs": [],
                    "found": 0,
                    "counters": CostCounters(),
                    "resilience": ResilienceCounters(),
                    "completed": True,
                    "outer_tuples": len(shard_outer),
                    "inner_tuples": len(shard_inner),
                    "elapsed_ms": (time.perf_counter() - shard_started)
                    * 1e3,
                }
            join = join_factory()
            result = join.join(shard_outer, shard_inner)
            # Ownership dedup: keep the pairs whose overlap region
            # starts inside this shard's range.
            owned = [
                pair
                for pair in result.pairs
                if lo <= max(pair[0].start, pair[1].start) <= hi
            ]
            return {
                "range": (lo, hi),
                "pairs": owned,
                "found": len(result.pairs),
                "counters": result.counters,
                "resilience": result.resilience,
                "completed": result.completed,
                "outer_tuples": len(shard_outer),
                "inner_tuples": len(shard_inner),
                "elapsed_ms": (time.perf_counter() - shard_started) * 1e3,
            }

        outcomes = map_tasks(
            run_shard,
            slices,
            backend=self.backend,
            max_workers=self.max_workers,
        )
        with tracer.span("router.merge", shards=len(plan)):
            merged = self._merge(outer, inner, outcomes, started)
        self._publish(merged)
        return merged

    def _merge(
        self,
        outer: TemporalRelation,
        inner: TemporalRelation,
        outcomes: List[Dict[str, Any]],
        started: float,
    ) -> MergedShardResult:
        pairs: List[Any] = []
        counters = CostCounters()
        resilience = ResilienceCounters()
        completed = True
        per_shard: List[Dict[str, Any]] = []
        duplicates = 0
        replicated_outer = sum(o["outer_tuples"] for o in outcomes) - len(
            outer
        )
        replicated_inner = sum(o["inner_tuples"] for o in outcomes) - len(
            inner
        )
        for outcome in outcomes:
            pairs.extend(outcome["pairs"])
            merge_counters(counters, outcome["counters"])
            resilience.merge(outcome["resilience"])
            completed = completed and outcome["completed"]
            duplicates += outcome["found"] - len(outcome["pairs"])
            per_shard.append(
                {
                    "range": list(outcome["range"]),
                    "pairs": len(outcome["pairs"]),
                    "outer_tuples": outcome["outer_tuples"],
                    "inner_tuples": outcome["inner_tuples"],
                    "elapsed_ms": outcome["elapsed_ms"],
                }
            )
        latencies = [shard["elapsed_ms"] for shard in per_shard]
        mean_latency = sum(latencies) / len(latencies) if latencies else 0.0
        skew = (
            max(latencies) / mean_latency
            if latencies and mean_latency > 0
            else 1.0
        )
        counts = [shard["pairs"] for shard in per_shard]
        mean_count = sum(counts) / len(counts) if counts else 0.0
        pair_skew = (
            max(counts) / mean_count if counts and mean_count > 0 else 1.0
        )
        details: Dict[str, Any] = {
            "sharded": {
                "shards": len(per_shard),
                "backend": self.backend,
                "per_shard": per_shard,
                "duplicates_dropped": duplicates,
                "replicated_outer": max(0, replicated_outer),
                "replicated_inner": max(0, replicated_inner),
                "latency_skew": skew,
                "pair_skew": pair_skew,
            },
            "index": None,
        }
        return MergedShardResult(
            algorithm="oip-sharded",
            pairs=pairs,
            counters=counters,
            resilience=resilience,
            details=details,
            completed=completed,
            elapsed_ms=(time.perf_counter() - started) * 1e3,
        )

    def _publish(self, merged: MergedShardResult) -> None:
        """The per-shard skew families; a no-op without a registry."""
        registry = self.metrics
        if registry is None:
            return
        sharded = merged.details["sharded"]
        registry.counter("service.router.queries").inc()
        registry.counter("service.router.duplicates_dropped").inc(
            sharded["duplicates_dropped"]
        )
        registry.gauge("service.router.shards").set(sharded["shards"])
        registry.gauge("service.router.latency_skew").set(
            sharded["latency_skew"]
        )
        registry.gauge("service.router.pair_skew").set(sharded["pair_skew"])
        histogram = registry.histogram(
            "service.router.shard.latency_ms",
            buckets=DEFAULT_LATENCY_BUCKETS_MS,
        )
        for shard in sharded["per_shard"]:
            histogram.observe(shard["elapsed_ms"])
