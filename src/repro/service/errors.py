"""Structured error taxonomy of the serving layer.

Every failure a client can observe maps to one :class:`ServiceError`
subclass with a stable ``code`` slug (mirrored into the wire protocol's
``error.code`` field and the ``service.queries.failed.<code>`` metric)
and a ``retriable`` hint — an overloaded service says "come back with
backoff", a draining one says "this instance is going away", and a
poisoned request says "don't bother retrying".
"""

from __future__ import annotations

from typing import Any, Dict, Optional

__all__ = [
    "ServiceError",
    "ServiceOverloadError",
    "ServiceUnavailableError",
    "SnapshotSwapRejectedError",
    "BadRequestError",
    "ScaleOutConfigError",
]


class ServiceError(RuntimeError):
    """Base class; ``code`` is a stable slug, ``retriable`` a client
    hint, ``detail`` a JSON-safe payload for the wire protocol."""

    code = "internal"
    retriable = False

    def __init__(
        self,
        message: str,
        *,
        code: Optional[str] = None,
        retriable: Optional[bool] = None,
        detail: Optional[Dict[str, Any]] = None,
    ) -> None:
        super().__init__(message)
        if code is not None:
            self.code = code
        if retriable is not None:
            self.retriable = retriable
        self.detail: Dict[str, Any] = detail if detail is not None else {}

    def to_wire(self) -> Dict[str, Any]:
        """The protocol's ``error`` object."""
        return {
            "code": self.code,
            "message": str(self),
            "retriable": bool(self.retriable),
            "detail": self.detail,
        }


class ServiceOverloadError(ServiceError):
    """Admission shed the request: every slot and queue position was
    taken (or the queue wait timed out).  Structured — carries the
    occupancy that caused the shed and a backoff hint — so clients
    degrade gracefully instead of hammering a collapsing queue."""

    code = "overload"
    retriable = True

    def __init__(
        self,
        message: str,
        *,
        active: int,
        queued: int,
        max_active: int,
        max_queued: int,
        timed_out: bool,
        retry_after_ms: float,
    ) -> None:
        super().__init__(
            message,
            detail={
                "active": active,
                "queued": queued,
                "max_active": max_active,
                "max_queued": max_queued,
                "timed_out": timed_out,
                "retry_after_ms": retry_after_ms,
            },
        )
        self.active = active
        self.queued = queued
        self.max_active = max_active
        self.max_queued = max_queued
        self.timed_out = timed_out
        self.retry_after_ms = retry_after_ms


class ServiceUnavailableError(ServiceError):
    """The service cannot take queries in its current state (not yet
    started, draining, or stopped)."""

    code = "unavailable"
    retriable = False

    def __init__(self, message: str, *, status: str) -> None:
        super().__init__(message, detail={"status": status})
        self.status = status


class SnapshotSwapRejectedError(ServiceError):
    """A refresh found the candidate snapshot unusable (corrupt, torn,
    missing, or failing fsck); the old generation keeps serving."""

    code = "swap_rejected"
    retriable = True

    def __init__(
        self,
        message: str,
        *,
        reason: str,
        verdict: Optional[Dict[str, Any]] = None,
    ) -> None:
        super().__init__(
            message, detail={"reason": reason, "verdict": verdict}
        )
        self.reason = reason
        self.verdict = verdict


class BadRequestError(ServiceError):
    """A request the protocol layer could not make sense of."""

    code = "bad_request"
    retriable = False


class ScaleOutConfigError(ServiceError):
    """An invalid scale-out configuration: a worker count that cannot
    fork, a shard plan with overlapping or gapped ranges, ranges that do
    not cover the snapshot's time domain.  Surfaces at ``serve`` startup
    as exit code 64 (EX_USAGE) with the structured detail on stderr."""

    code = "bad_config"
    retriable = False

    def __init__(
        self, message: str, *, detail: Optional[Dict[str, Any]] = None
    ) -> None:
        super().__init__(message, detail=detail)
