"""Fault-tolerant concurrent query service over persistent OIP
snapshots.

Layering (each module usable on its own):

* :mod:`~repro.service.errors` — structured, wire-ready error taxonomy.
* :mod:`~repro.service.snapshots` — generation pinning and the
  load-validate-swap-drop hot-refresh protocol.
* :mod:`~repro.service.service` — :class:`JoinService`: admission,
  deadlines, retries, breaker, drain, ``service.*`` metrics.
* :mod:`~repro.service.protocol` / :mod:`~repro.service.server` /
  :mod:`~repro.service.client` — line-delimited JSON over TCP or stdio.
"""

from .client import RemoteServiceError, ServiceClient
from .errors import (
    BadRequestError,
    ServiceError,
    ServiceOverloadError,
    ServiceUnavailableError,
    SnapshotSwapRejectedError,
)
from .protocol import trace_context
from .server import MetricsExporter, ServiceServer, serve_stdio
from .service import (
    STATS_VERSION,
    JoinService,
    offline_query,
    summarize_result,
)
from .snapshots import ServingGeneration, SnapshotManager, join_kwargs_from_meta

__all__ = [
    "JoinService",
    "ServiceServer",
    "MetricsExporter",
    "ServiceClient",
    "STATS_VERSION",
    "trace_context",
    "RemoteServiceError",
    "ServingGeneration",
    "SnapshotManager",
    "join_kwargs_from_meta",
    "offline_query",
    "summarize_result",
    "serve_stdio",
    "ServiceError",
    "ServiceOverloadError",
    "ServiceUnavailableError",
    "SnapshotSwapRejectedError",
    "BadRequestError",
]
