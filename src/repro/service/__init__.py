"""Fault-tolerant concurrent query service over persistent OIP
snapshots.

Layering (each module usable on its own):

* :mod:`~repro.service.errors` — structured, wire-ready error taxonomy.
* :mod:`~repro.service.snapshots` — generation pinning and the
  load-validate-swap-drop hot-refresh protocol.
* :mod:`~repro.service.service` — :class:`JoinService`: admission,
  deadlines, retries, breaker, drain, ``service.*`` metrics.
* :mod:`~repro.service.cache` — per-generation LRU of finished
  response bodies, keyed by canonical request fingerprint.
* :mod:`~repro.service.router` — time-shard scatter-gather execution
  with ownership-rule dedup (bit-identical to the unsharded join).
* :mod:`~repro.service.workers` / :mod:`~repro.service.aggregate` —
  pre-fork multi-process serving and fleet-wide stats aggregation.
* :mod:`~repro.service.protocol` / :mod:`~repro.service.server` /
  :mod:`~repro.service.client` — line-delimited JSON over TCP or stdio.
"""

from .cache import ResultCache, request_fingerprint
from .client import RemoteServiceError, ServiceClient
from .errors import (
    BadRequestError,
    ScaleOutConfigError,
    ServiceError,
    ServiceOverloadError,
    ServiceUnavailableError,
    SnapshotSwapRejectedError,
)
from .protocol import trace_context
from .router import TimeShardRouter, shard_ranges, validate_shard_ranges
from .server import MetricsExporter, ServiceServer, serve_stdio
from .service import (
    STATS_VERSION,
    JoinService,
    offline_query,
    summarize_result,
)
from .snapshots import ServingGeneration, SnapshotManager, join_kwargs_from_meta
from .workers import WorkerStartupError, WorkerSupervisor

__all__ = [
    "JoinService",
    "ServiceServer",
    "MetricsExporter",
    "ServiceClient",
    "STATS_VERSION",
    "trace_context",
    "RemoteServiceError",
    "ServingGeneration",
    "SnapshotManager",
    "join_kwargs_from_meta",
    "offline_query",
    "summarize_result",
    "serve_stdio",
    "ResultCache",
    "request_fingerprint",
    "TimeShardRouter",
    "shard_ranges",
    "validate_shard_ranges",
    "WorkerSupervisor",
    "WorkerStartupError",
    "ServiceError",
    "ServiceOverloadError",
    "ServiceUnavailableError",
    "SnapshotSwapRejectedError",
    "BadRequestError",
    "ScaleOutConfigError",
]
