"""Blocking stdlib client for the line-delimited JSON protocol.

:class:`ServiceClient` wraps one TCP connection; each request gets a
monotonically increasing ``id`` and the reply is matched against it.
Remote failures re-raise as :class:`RemoteServiceError` carrying the
structured ``code``/``retriable``/``detail`` fields from the wire, so a
caller can implement the same backoff policy against a remote service
as against an in-process one.

**Client-side tracing.**  Construct the client with a
:class:`~repro.obs.Tracer` and every request opens a
``client.request`` span stamped with a fresh ``trace_id`` that is also
sent on the wire (the protocol's ``trace`` field).  The server threads
the same id through its own span tree, so the client span and the
server tree fetched via :meth:`tracedump` stitch into one end-to-end
trace with :func:`~repro.obs.stitch_traces`.  Without a tracer no
trace field is sent and the request bytes are identical to the
pre-telemetry protocol.
"""

from __future__ import annotations

import socket
import time
from typing import Any, Dict, Optional, Sequence

from ..obs.trace import NULL_TRACER, new_trace_id
from .errors import ServiceError
from .protocol import MAX_LINE_BYTES, encode_message

__all__ = ["ServiceClient", "RemoteServiceError"]


class RemoteServiceError(ServiceError):
    """A structured error response from the remote service."""

    @classmethod
    def from_wire(cls, error: Dict[str, Any]) -> "RemoteServiceError":
        return cls(
            str(error.get("message", "remote service error")),
            code=str(error.get("code", "internal")),
            retriable=bool(error.get("retriable", False)),
            detail=dict(error.get("detail") or {}),
        )


class ServiceClient:
    """``with ServiceClient(host, port) as client: client.join()``"""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        timeout_s: Optional[float] = 30.0,
        tracer: Any = NULL_TRACER,
        retries: int = 0,
        retry_backoff_s: float = 0.05,
    ) -> None:
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        self.host = host
        self.port = port
        self.timeout_s = timeout_s
        #: Reconnect-and-resend attempts after a dropped connection.
        #: Against a worker pool a broken connection usually means one
        #: worker died mid-request; the kernel routes the reconnect to a
        #: surviving worker, so the retried request is re-served from
        #: the same pinned generation.  Off by default — single-process
        #: callers keep fail-fast semantics.
        self.retries = int(retries)
        self.retry_backoff_s = retry_backoff_s
        #: Dropped-connection retries actually performed (test hook).
        self.reconnects = 0
        self._sock = socket.create_connection((host, port), timeout=timeout_s)
        self._rfile = self._sock.makefile("rb")
        self._next_id = 0
        self.tracer = tracer if tracer is not None else NULL_TRACER
        #: Trace id of the most recent request (None while untraced).
        self.last_trace_id: Optional[str] = None

    # -- plumbing ------------------------------------------------------------

    def _reconnect(self) -> None:
        try:
            self.close()
        except OSError:
            pass
        self._sock = socket.create_connection(
            (self.host, self.port), timeout=self.timeout_s
        )
        self._rfile = self._sock.makefile("rb")

    def _exchange_with_retry(
        self, op: str, request_id: int, message: Dict[str, Any]
    ) -> Dict[str, Any]:
        attempt = 0
        while True:
            try:
                return self._exchange(op, request_id, message)
            except (ServiceError, OSError) as error:
                # A timeout is NOT a dropped connection: the server is
                # still working the (slow) request, and reconnecting
                # would duplicate expensive in-flight work on a healthy
                # worker.  socket.timeout is an OSError subclass
                # (aliased to TimeoutError since 3.10), so exclude it
                # explicitly — only genuinely broken connections
                # (reset, EOF, refused) are worth re-sending.
                dropped = (
                    isinstance(error, OSError)
                    and not isinstance(
                        error, (TimeoutError, socket.timeout)
                    )
                ) or (
                    isinstance(error, ServiceError)
                    and error.code == "disconnected"
                )
                if not dropped or attempt >= self.retries:
                    raise
                attempt += 1
                if self.retry_backoff_s:
                    time.sleep(self.retry_backoff_s * attempt)
                self._reconnect()
                self.reconnects += 1

    def request(self, op: str, **fields: Any) -> Dict[str, Any]:
        """Send one request and block for its response body."""
        self._next_id += 1
        request_id = self._next_id
        message = {"op": op, "id": request_id}
        message.update(
            {key: value for key, value in fields.items() if value is not None}
        )
        if not self.tracer.enabled:
            return self._exchange_with_retry(op, request_id, message)
        trace_id = new_trace_id()
        self.last_trace_id = trace_id
        message["trace"] = {"trace_id": trace_id}
        with self.tracer.span(
            "client.request", op=op, trace_id=trace_id
        ) as span:
            response = self._exchange_with_retry(op, request_id, message)
            if "service_ms" in response:
                span.set("server_ms", response["service_ms"])
            return response

    def _exchange(
        self, op: str, request_id: int, message: Dict[str, Any]
    ) -> Dict[str, Any]:
        self._sock.sendall(encode_message(message))
        line = self._rfile.readline(MAX_LINE_BYTES + 1)
        if not line:
            raise ServiceError(
                f"connection to {self.host}:{self.port} closed before a "
                f"response to {op!r} arrived",
                code="disconnected",
                retriable=True,
            )
        import json

        response = json.loads(line.decode("utf-8"))
        if response.get("id") not in (request_id, None):
            raise ServiceError(
                f"response id {response.get('id')!r} does not match "
                f"request id {request_id}",
                code="protocol",
            )
        if not response.get("ok"):
            raise RemoteServiceError.from_wire(response.get("error") or {})
        return response

    def close(self) -> None:
        try:
            self._rfile.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # -- ops -----------------------------------------------------------------

    def ping(self) -> Dict[str, Any]:
        return self.request("ping")

    def join(
        self,
        *,
        deadline_ms: Optional[float] = None,
        kernel: Optional[str] = None,
        include_pairs: bool = False,
        max_pairs: int = 1000,
        shards: Optional[int] = None,
    ) -> Dict[str, Any]:
        return self.request(
            "join",
            deadline_ms=deadline_ms,
            kernel=kernel,
            include_pairs=include_pairs or None,
            max_pairs=max_pairs,
            shards=shards,
        )

    def lookup(
        self,
        window: Sequence[int],
        *,
        deadline_ms: Optional[float] = None,
        kernel: Optional[str] = None,
        include_pairs: bool = False,
        max_pairs: int = 1000,
        shards: Optional[int] = None,
    ) -> Dict[str, Any]:
        return self.request(
            "lookup",
            window=list(window),
            deadline_ms=deadline_ms,
            kernel=kernel,
            include_pairs=include_pairs or None,
            max_pairs=max_pairs,
            shards=shards,
        )

    def health(self) -> Dict[str, Any]:
        return self.request("health")

    def metrics(self) -> Dict[str, Any]:
        return self.request("metrics")["metrics"]

    def stats(self) -> Dict[str, Any]:
        """The server's ``service_stats`` document (latency quantiles);
        against a worker pool this is the fleet-wide aggregation."""
        return self.request("stats")["stats"]

    def stats_local(self) -> Dict[str, Any]:
        """The answering process's own stats, never aggregated."""
        return self.request("stats_local")["stats"]

    def tracedump(
        self,
        *,
        trace_id: Optional[str] = None,
        limit: Optional[int] = None,
    ) -> Dict[str, Any]:
        """Recently finished server-side trace trees (optionally one id)."""
        return self.request(
            "tracedump", filter_trace_id=trace_id, limit=limit
        )

    def refresh(self, *, force: bool = False) -> Dict[str, Any]:
        return self.request("refresh", force=force or None)

    def shutdown(self) -> Dict[str, Any]:
        """Ask the server to drain and stop (acknowledged immediately)."""
        return self.request("shutdown")
