"""Pre-fork worker pool: N processes of probe work behind one port.

Python's GIL caps a single serving process at roughly one core of probe
work no matter how many handler threads it runs.  The classic unix
answer — and this module's — is the **pre-fork shared-listener** model:
the parent binds the TCP listener once, forks N workers, and every
worker ``accept()``\\ s on the inherited socket; the kernel balances
incoming connections across blocked acceptors, so no user-space proxy
sits on the hot path and the parent does nothing per request.

Each worker is a full, independent :class:`~repro.service.service
.JoinService` — its own restored snapshot generation, admission
controller, breaker, metrics registry, result cache — so the pool's
correctness argument is inductive: every worker individually honours
the single-process bit-identity contract against the shared snapshot
file, therefore any interleaving of connections across workers does
too.

Coordination is deliberately thin:

* **roster** — the parent atomically rewrites ``roster.json`` (worker
  ids, pids, per-worker control endpoints, restart count) after every
  fork; workers read it to aggregate fleet-wide ``stats``
  (:mod:`repro.service.aggregate`).
* **refresh** — SIGHUP to the parent fans out as SIGHUP to every
  worker, each of which hot-swaps through its own
  :class:`~repro.service.snapshots.SnapshotManager` against the same
  snapshot path (the existing single-process path, N times).
* **supervision** — the parent waits on process sentinels; a worker
  that dies (crash, SIGKILL chaos) is logged, counted in
  ``service.worker.restarts``, and replaced while its in-flight clients
  see a dropped connection and retry onto a surviving worker
  (:class:`~repro.service.client.ServiceClient` ``retries=``).
* **shutdown** — SIGTERM to the parent (or a client ``shutdown`` op,
  which the receiving worker forwards to the parent) SIGTERMs every
  worker; each drains its in-flight queries before exiting.
"""

from __future__ import annotations

import json
import multiprocessing
import multiprocessing.connection
import os
import signal
import socket
import sys
import threading
import time
from typing import Any, Dict, List, Optional

from .errors import ScaleOutConfigError

__all__ = ["WorkerSupervisor", "WorkerStartupError", "MAX_WORKERS"]

#: Sanity ceiling on the pool size; past this the per-worker snapshot
#: restores dominate memory long before throughput improves.
MAX_WORKERS = 256


class WorkerStartupError(RuntimeError):
    """A worker failed to become ready; carries the exit code the
    single-process ``serve`` path would have used (66 missing snapshot,
    65 corrupt, 70 anything else) so the CLI surfaces the same code
    regardless of worker count."""

    def __init__(self, message: str, *, exit_code: int = 70) -> None:
        super().__init__(message)
        self.exit_code = exit_code


def _write_atomic(path: str, document: Dict[str, Any]) -> None:
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(document, handle, sort_keys=True)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)


def _worker_main(
    listener: socket.socket,
    worker_index: int,
    conn: Any,
    config: Dict[str, Any],
) -> None:
    """Child entry: build a full service, adopt the shared listener,
    report readiness (or a classified failure) over the pipe, then park
    until SIGTERM."""
    from ..obs.log import QueryLog
    from ..storage.snapshot import SnapshotError
    from .server import ServiceServer
    from .service import JoinService

    parent_pid = os.getppid()
    stop = threading.Event()
    try:
        query_log = None
        log_path = config.get("query_log_path")
        if log_path:
            # One NDJSON file per worker: concurrent appends from N
            # processes would interleave torn lines in a shared file.
            query_log = QueryLog(
                path=f"{log_path}.w{worker_index}",
                sample_rate=config.get("log_sample_rate", 1.0),
                slow_query_ms=config.get("slow_query_ms"),
            )
        service = JoinService(
            config["index_path"],
            worker_id=worker_index,
            roster_path=config["roster_path"],
            query_log=query_log,
            **config.get("service_kwargs", {}),
        )
        generation = service.start()
        control = ServiceServer(service, host="127.0.0.1", port=0).start()
        main_server = ServiceServer(
            service,
            listener=listener,
            drain_timeout_s=config.get("drain_timeout_s", 30.0),
            hard_stop_timeout_s=config.get("hard_stop_timeout_s", 5.0),
            # A client-initiated shutdown must stop the *pool*: forward
            # to the parent, which SIGTERMs every worker (including this
            # one) for a coordinated drain.
            on_shutdown_request=lambda: os.kill(
                parent_pid, signal.SIGTERM
            ),
        ).start()
    except SnapshotError as error:
        conn.send(
            {
                "ok": False,
                "worker": worker_index,
                "error": f"{error} [reason={error.reason}]",
                "exit_code": 66 if error.reason == "missing" else 65,
            }
        )
        conn.close()
        os._exit(66 if error.reason == "missing" else 65)
    except Exception as error:  # noqa: BLE001 - report, then die
        conn.send(
            {
                "ok": False,
                "worker": worker_index,
                "error": f"{type(error).__name__}: {error}",
                "exit_code": 70,
            }
        )
        conn.close()
        os._exit(70)

    def _term(_signum: int, _frame: Any) -> None:
        stop.set()

    def _hup(_signum: int, _frame: Any) -> None:
        def _refresh() -> None:
            try:
                service.refresh()
            except Exception:  # noqa: BLE001 - rejected swap keeps serving
                pass

        threading.Thread(target=_refresh, daemon=True).start()

    signal.signal(signal.SIGTERM, _term)
    signal.signal(signal.SIGINT, _term)
    if hasattr(signal, "SIGHUP"):
        signal.signal(signal.SIGHUP, _hup)
    conn.send(
        {
            "ok": True,
            "worker": worker_index,
            "pid": os.getpid(),
            "generation": generation,
            "control_host": "127.0.0.1",
            "control_port": control.port,
        }
    )
    conn.close()
    stop.wait()
    main_server.shutdown()
    control.shutdown()
    if query_log is not None:
        query_log.close()
    sys.exit(0)


class WorkerSupervisor:
    """Fork, roster, supervise, and stop a pool of service workers.

    The parent process never touches a request: it owns the bound
    listener, the roster file, and the lifecycle.  ``start()`` forks the
    pool and blocks until every worker reports ready (propagating the
    first failure with its exit code); ``run()`` supervises until
    :meth:`initiate_shutdown`; ``refresh()`` fans SIGHUP out to the
    pool.
    """

    def __init__(
        self,
        index_path: str,
        *,
        workers: int,
        host: str = "127.0.0.1",
        port: int = 0,
        service_kwargs: Optional[Dict[str, Any]] = None,
        drain_timeout_s: float = 30.0,
        hard_stop_timeout_s: float = 5.0,
        runtime_dir: Optional[str] = None,
        query_log_path: Optional[str] = None,
        log_sample_rate: float = 1.0,
        slow_query_ms: Optional[float] = None,
        ready_timeout_s: float = 60.0,
    ) -> None:
        if not 1 <= int(workers) <= MAX_WORKERS:
            raise ScaleOutConfigError(
                f"workers must be in [1, {MAX_WORKERS}], got {workers}",
                detail={"workers": workers},
            )
        if "fork" not in multiprocessing.get_all_start_methods():
            raise ScaleOutConfigError(
                "multi-process serving requires the fork start method, "
                "unavailable on this platform"
            )
        self.index_path = index_path
        self.workers = int(workers)
        self.host = host
        self._requested_port = port
        self.drain_timeout_s = drain_timeout_s
        self.hard_stop_timeout_s = hard_stop_timeout_s
        self.ready_timeout_s = ready_timeout_s
        self.restarts = 0
        self._ctx = multiprocessing.get_context("fork")
        self._listener: Optional[socket.socket] = None
        self._procs: List[Any] = []
        self._roster_entries: List[Dict[str, Any]] = []
        self._stopping = threading.Event()
        if runtime_dir is None:
            runtime_dir = f"{index_path}.workers"
        os.makedirs(runtime_dir, exist_ok=True)
        self.runtime_dir = runtime_dir
        self.roster_path = os.path.join(runtime_dir, "roster.json")
        self._config: Dict[str, Any] = {
            "index_path": index_path,
            "roster_path": self.roster_path,
            "service_kwargs": dict(service_kwargs or {}),
            "drain_timeout_s": drain_timeout_s,
            "hard_stop_timeout_s": hard_stop_timeout_s,
            "query_log_path": query_log_path,
            "log_sample_rate": log_sample_rate,
            "slow_query_ms": slow_query_ms,
        }

    # -- lifecycle -----------------------------------------------------------

    @property
    def port(self) -> int:
        if self._listener is None:
            raise RuntimeError("supervisor is not started")
        return self._listener.getsockname()[1]

    def start(self) -> Dict[str, Any]:
        """Bind, fork the pool, wait for readiness, write the roster.
        Returns the ready document (host, port, generation, pids)."""
        self._listener = socket.create_server(
            (self.host, self._requested_port), backlog=128
        )
        generation = None
        for index in range(self.workers):
            entry = self._spawn(index)
            generation = entry["generation"]
        self._write_roster()
        return {
            "host": self.host,
            "port": self.port,
            "workers": self.workers,
            "generation": generation,
            "pids": [e["pid"] for e in self._roster_entries],
            "roster": self.roster_path,
        }

    def _spawn(
        self, index: int, *, teardown_on_failure: bool = True
    ) -> Dict[str, Any]:
        """Fork worker *index* and wait for its readiness report.

        A startup failure during the initial ``start()`` tears the whole
        pool down (``teardown_on_failure=True``): the pool never served,
        so failing loudly with the classified exit code is correct.  A
        failure while *replacing* a dead worker must instead reap only
        the failed replacement — surviving workers keep serving on the
        still-open listener and the caller retries the index later.
        """
        parent_conn, child_conn = self._ctx.Pipe(duplex=False)
        proc = self._ctx.Process(
            target=_worker_main,
            args=(self._listener, index, child_conn, self._config),
            name=f"oip-worker-{index}",
        )
        proc.start()
        child_conn.close()
        if not parent_conn.poll(self.ready_timeout_s):
            proc.terminate()
            proc.join(timeout=5.0)
            raise WorkerStartupError(
                f"worker {index} did not report ready within "
                f"{self.ready_timeout_s:.0f}s"
            )
        report = parent_conn.recv()
        parent_conn.close()
        if not report.get("ok"):
            proc.join(timeout=5.0)
            if teardown_on_failure:
                self._teardown_procs()
            raise WorkerStartupError(
                f"worker {index} failed to start: {report.get('error')}",
                exit_code=int(report.get("exit_code", 70)),
            )
        entry = {
            "worker": index,
            "pid": report["pid"],
            "generation": report["generation"],
            "control_host": report["control_host"],
            "control_port": report["control_port"],
        }
        self._procs.append(proc)
        self._roster_entries = [
            e for e in self._roster_entries if e["worker"] != index
        ] + [entry]
        self._roster_entries.sort(key=lambda e: e["worker"])
        return entry

    def _write_roster(self) -> None:
        _write_atomic(
            self.roster_path,
            {
                "version": 1,
                "parent_pid": os.getpid(),
                "host": self.host,
                "port": self.port,
                "workers": self._roster_entries,
                "restarts": self.restarts,
            },
        )

    def run(self, poll_interval_s: float = 0.5) -> None:
        """Supervise until shutdown: wait on process sentinels, replace
        any worker that dies, keep the roster current.

        A replacement that itself fails to start (e.g. the snapshot went
        bad mid-rotation) never touches the rest of the pool: the failed
        fork is reaped, the listener stays open, surviving workers keep
        serving their pinned generation, and the index stays *pending* —
        retried on every supervision pass until a replacement sticks.
        """
        pending: set = set()
        while not self._stopping.is_set():
            changed = False
            for proc in list(self._procs):
                if proc.is_alive():
                    continue
                index = int(proc.name.rsplit("-", 1)[1])
                self._procs.remove(proc)
                # Drop the dead worker's roster entry now so fleet-wide
                # stats aggregation stops dialling its control port.
                self._roster_entries = [
                    e for e in self._roster_entries if e["worker"] != index
                ]
                self.restarts += 1
                pending.add(index)
                changed = True
            for index in sorted(pending):
                if self._stopping.is_set():
                    break
                try:
                    self._spawn(index, teardown_on_failure=False)
                except WorkerStartupError:
                    continue  # retried on the next pass
                pending.discard(index)
                changed = True
            if changed:
                self._write_roster()
            sentinels = [p.sentinel for p in self._procs if p.is_alive()]
            if not sentinels and not pending:
                break
            if sentinels:
                multiprocessing.connection.wait(
                    sentinels, timeout=poll_interval_s
                )
            else:
                # Every worker is down and awaiting respawn; pace the
                # retry loop instead of spinning.
                time.sleep(poll_interval_s)

    def refresh(self) -> None:
        """Fan the parent's SIGHUP out to every live worker."""
        if not hasattr(signal, "SIGHUP"):
            return
        for proc in self._procs:
            if proc.is_alive() and proc.pid:
                try:
                    os.kill(proc.pid, signal.SIGHUP)
                except OSError:
                    pass

    def initiate_shutdown(self) -> None:
        self._stopping.set()

    def shutdown(self) -> None:
        """SIGTERM the pool, wait for drains, reap stragglers."""
        self._stopping.set()
        for proc in self._procs:
            if proc.is_alive() and proc.pid:
                try:
                    os.kill(proc.pid, signal.SIGTERM)
                except OSError:
                    pass
        deadline = (
            time.monotonic()
            + self.drain_timeout_s
            + self.hard_stop_timeout_s
            + 5.0
        )
        for proc in self._procs:
            proc.join(timeout=max(0.1, deadline - time.monotonic()))
        for proc in self._procs:
            if proc.is_alive():
                proc.kill()
                proc.join(timeout=5.0)
        self._procs = []
        if self._listener is not None:
            self._listener.close()
            self._listener = None

    def _teardown_procs(self) -> None:
        for proc in self._procs:
            if proc.is_alive():
                proc.terminate()
        for proc in self._procs:
            proc.join(timeout=5.0)
        self._procs = []
        if self._listener is not None:
            self._listener.close()
            self._listener = None
