"""Fleet-wide ``stats`` aggregation across a worker pool.

Each worker in a ``serve --workers N`` pool is its own process with its
own :class:`~repro.obs.MetricsRegistry`; before this module, ``repro
stats`` reported whichever worker happened to accept the connection —
quantiles and counters for 1/N of the traffic presented as if they were
the whole service.

The fix is structural: quantiles cannot be averaged after the fact, but
the registry's fixed-bucket histograms *can* be merged exactly
(:func:`~repro.obs.registry.merge_histogram_snapshots` adds bucket
counts elementwise — every process shares the same immutable bucket
layout).  So the answering worker fetches **raw** ``metrics`` and
``health`` documents from its peers over their control endpoints
(discovered through the parent-maintained roster file), merges counters
and histograms first, and only then computes quantiles — the same
numbers a single process serving all the traffic would have reported.

Unreachable peers (mid-restart after a crash) degrade gracefully: the
aggregation reports who answered and who did not rather than failing
the whole op.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List, Optional, Tuple

from ..obs.quantiles import summarize_latency
from ..obs.registry import merge_histogram_snapshots
from .service import STATS_VERSION

__all__ = ["read_roster", "aggregate_stats"]


def read_roster(path: str) -> Optional[Dict[str, Any]]:
    """The supervisor's roster document, or ``None`` when missing or
    torn (the parent replaces it atomically, so a partial read means a
    race with an in-flight rewrite — the caller just degrades to a
    local answer)."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            roster = json.load(handle)
    except (OSError, ValueError):
        return None
    if not isinstance(roster, dict) or "workers" not in roster:
        return None
    return roster


def _fetch_peer(
    host: str, port: int, timeout_s: float
) -> Tuple[Dict[str, Any], Dict[str, Any]]:
    """One peer's raw ``metrics`` + ``health`` over its control port."""
    from .client import ServiceClient

    with ServiceClient(host, port, timeout_s=timeout_s) as client:
        return client.metrics(), client.health()


def _merge_metrics(
    target: Dict[str, Any], source: Dict[str, Any]
) -> None:
    """Fold one registry snapshot into the accumulator: counters add,
    histograms merge elementwise, gauges keep per-worker meaning and
    are dropped from the fleet view (state/inflight of *which* worker?
    — the health section answers that instead)."""
    for name, value in source.get("counters", {}).items():
        target["counters"][name] = target["counters"].get(name, 0) + value
    for name, hist in source.get("histograms", {}).items():
        existing = target["histograms"].get(name)
        if existing is None:
            target["histograms"][name] = {
                "buckets": list(hist["buckets"]),
                "counts": list(hist["counts"]),
                "sum": hist["sum"],
                "count": hist["count"],
            }
        else:
            target["histograms"][name] = merge_histogram_snapshots(
                existing, hist
            )


def aggregate_stats(
    service: Any, *, peer_timeout_s: float = 2.0
) -> Dict[str, Any]:
    """The fleet-wide ``service_stats`` document for the pool *service*
    belongs to (it must have been constructed with ``roster_path``).

    Shape-compatible with :meth:`JoinService.stats` (same version, same
    ``endpoints``/``phases``/``counters`` sections computed from the
    merged histograms) plus a ``workers`` section describing the pool.
    """
    roster = (
        read_roster(service.roster_path)
        if service.roster_path is not None
        else None
    )
    local_health = service.health()
    merged: Dict[str, Any] = {"counters": {}, "histograms": {}}
    _merge_metrics(merged, service.publish_metrics())
    queries_served = local_health["queries_served"]
    uptime_s = local_health["uptime_s"] or 0.0
    inflight = local_health["inflight"]
    responding = [local_health.get("worker")]
    unreachable: List[int] = []
    configured = 1
    restarts = 0
    if roster is not None:
        workers = roster.get("workers", [])
        configured = len(workers) or 1
        restarts = int(roster.get("restarts", 0))
        own_pid = os.getpid()
        for entry in workers:
            if entry.get("pid") == own_pid:
                continue
            try:
                peer_metrics, peer_health = _fetch_peer(
                    entry.get("control_host", "127.0.0.1"),
                    int(entry["control_port"]),
                    peer_timeout_s,
                )
            except Exception:  # noqa: BLE001 - peer may be mid-restart
                unreachable.append(entry.get("worker"))
                continue
            _merge_metrics(merged, peer_metrics)
            queries_served += peer_health.get("queries_served", 0)
            uptime_s = max(uptime_s, peer_health.get("uptime_s") or 0.0)
            inflight += peer_health.get("inflight", 0)
            responding.append(peer_health.get("worker"))
    # Restarts are a pool-level fact the parent tracks; surface them in
    # the counter namespace so dashboards need no special case.
    merged["counters"]["service.worker.restarts"] = restarts
    endpoints: Dict[str, Any] = {}
    phases: Dict[str, Any] = {}
    for name, hist in merged["histograms"].items():
        if name.startswith("service.op.") and name.endswith(".latency_ms"):
            key = name[len("service.op."):-len(".latency_ms")]
            endpoints[key] = summarize_latency(hist)
        elif name.startswith("service.phase.") and name.endswith(
            ".latency_ms"
        ):
            key = name[len("service.phase."):-len(".latency_ms")]
            phases[key] = summarize_latency(hist)
    counters = {
        name: value
        for name, value in merged["counters"].items()
        if name.startswith("service.")
    }
    document: Dict[str, Any] = {
        "kind": "service_stats",
        "version": STATS_VERSION,
        "status": local_health["status"],
        "generation": local_health["generation"],
        "uptime_s": uptime_s,
        "queries_served": queries_served,
        "inflight": inflight,
        "endpoints": endpoints,
        "phases": phases,
        "counters": counters,
        "tracing": service.tracing,
        "slow_query_ms": service.query_log.slow_query_ms,
        "aggregated": True,
        "workers": {
            "configured": configured,
            "responding": len(responding),
            "responding_ids": sorted(
                w for w in responding if w is not None
            ),
            "unreachable": sorted(
                w for w in unreachable if w is not None
            ),
            "restarts": restarts,
        },
    }
    if service.result_cache is not None:
        cache_stats = service.result_cache.stats()
        lookups = cache_stats["hits"] + cache_stats["misses"]
        cache_stats["hit_rate"] = (
            cache_stats["hits"] / lookups if lookups else 0.0
        )
        document["cache"] = cache_stats
    return document
