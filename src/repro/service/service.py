"""The long-lived, thread-safe overlap-join query service.

:class:`JoinService` is the composition point of six PRs of machinery:
snapshot persistence provides the data (:mod:`repro.storage.snapshot`,
pinned per generation by :class:`~repro.service.snapshots
.SnapshotManager`), the governor provides the request lifecycle
(:class:`~repro.engine.governor.AdmissionController` bounds concurrency
and sheds overload, :class:`~repro.engine.governor.QueryBudget` turns a
per-request deadline into a cooperative abort,
:class:`~repro.engine.governor.CircuitBreaker` makes pool degradation
persistent across queries), and the observability layer reports it all
(``service.*`` metric families in a
:class:`~repro.obs.MetricsRegistry`).

Correctness contract: a service query restores partition lists from the
pinned generation through the ``index_provider`` hook and is therefore
**bit-identical** — pairs, counters, fingerprints — to an offline
``OIPJoin(index_path=...)`` run against the same generation (see
:func:`offline_query`, which the chaos suite uses as its oracle).

Request lifecycle (every ``query()``)::

    submitted ──▶ state gate (serving?) ──▶ admission (slots/queue)
        │                │ draining/stopped        │ full
        │                ▼                         ▼
        │         ServiceUnavailableError   ServiceOverloadError
        ▼
    pin generation ──▶ budget+cancel+breaker join ──▶ release pin
        │                    │ deadline / fault / cancel
        ▼                    ▼
    response            structured ServiceError (stable ``code``)

Graceful shutdown: :meth:`drain` stops admitting, waits for in-flight
queries up to a timeout, then hard-stops stragglers by cancelling their
cooperative tokens — zero queries are lost silently; every admitted
query either completes or receives a structured ``cancelled`` error.
"""

from __future__ import annotations

import os
import threading
import time
import zlib
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..core.join import OIPJoin
from ..engine.governor import (
    AdmissionController,
    AdmissionRejectedError,
    BudgetExceededError,
    CancellationToken,
    CircuitBreaker,
    QueryBudget,
)
from ..obs.log import NULL_QUERY_LOG, QueryLog
from ..obs.quantiles import summarize_latency
from ..obs.registry import DEFAULT_LATENCY_BUCKETS_MS, MetricsRegistry
from ..obs.trace import NULL_TRACER, TraceBuffer, Tracer, new_trace_id
from ..storage.faults import StorageFaultError
from .cache import ResultCache, request_fingerprint
from .errors import (
    BadRequestError,
    ServiceError,
    ServiceOverloadError,
    ServiceUnavailableError,
    SnapshotSwapRejectedError,
)
from .protocol import trace_context
from .router import TimeShardRouter
from .snapshots import ServingGeneration, SnapshotManager

__all__ = [
    "JoinService",
    "offline_query",
    "STARTING",
    "SERVING",
    "DRAINING",
    "STOPPED",
    "STATS_VERSION",
]

#: Version of the ``service_stats`` document (``stats`` op /
#: ``repro stats``); bump on breaking shape changes.
STATS_VERSION = 1

STARTING = "starting"
SERVING = "serving"
DRAINING = "draining"
STOPPED = "stopped"

_STATE_VALUES = {STARTING: 0, SERVING: 1, DRAINING: 2, STOPPED: 3}
_BREAKER_VALUES = {
    CircuitBreaker.CLOSED: 0,
    CircuitBreaker.HALF_OPEN: 1,
    CircuitBreaker.OPEN: 2,
}
_OPS = ("join", "lookup")


def _window_matches(pair: Tuple[Any, Any], ts: int, te: int) -> bool:
    """A pair matches window ``[ts, te]`` iff all three intervals share
    a point (the :class:`~repro.engine.batch.BatchJoin` convention)."""
    outer, inner = pair
    return max(outer.start, inner.start, ts) <= min(
        outer.end, inner.end, te
    )


def _check_window(window: Any) -> Tuple[int, int]:
    try:
        ts, te = int(window[0]), int(window[1])
    except (TypeError, ValueError, IndexError, KeyError):
        raise BadRequestError(
            f"window must be a [start, end] integer pair, got {window!r}"
        ) from None
    if te < ts:
        raise BadRequestError(
            f"window end {te} precedes window start {ts}"
        )
    return ts, te


def summarize_result(
    result: Any,
    *,
    op: str,
    window: Optional[Tuple[int, int]],
    generation: Optional[int],
    include_pairs: bool = False,
    max_pairs: int = 1000,
) -> Dict[str, Any]:
    """The query-response body shared by the service and its offline
    oracle: windowed filtering, canonical fingerprint, counters.

    ``fingerprint`` is an order-independent 48-bit sum of per-pair
    CRC32s over the canonical pair key, so two runs agree exactly when
    they produced the same result multiset — cheap to ship over the
    wire, stable across processes, and computed in one pass without
    sorting the (potentially huge) result."""
    pairs = result.pairs
    if op == "lookup":
        ts, te = window if window is not None else (None, None)
        pairs = [pair for pair in pairs if _window_matches(pair, ts, te)]
    fingerprint = 0
    for outer, inner in pairs:
        key = (
            f"{outer.start}|{outer.end}|{outer.payload!r}|"
            f"{inner.start}|{inner.end}|{inner.payload!r}"
        )
        fingerprint = (
            fingerprint + zlib.crc32(key.encode("utf-8"))
        ) & 0xFFFFFFFFFFFF
    body: Dict[str, Any] = {
        "op": op,
        "generation": generation,
        "window": None if window is None else list(window),
        "pairs": len(pairs),
        "fingerprint": fingerprint,
        "completed": bool(result.completed),
        "elapsed_ms": result.elapsed_ms,
        "counters": result.counters.snapshot(),
        "index": result.details.get("index"),
    }
    if include_pairs:
        body["results"] = [
            [
                [outer.start, outer.end, outer.payload],
                [inner.start, inner.end, inner.payload],
            ]
            for outer, inner in pairs[: max(0, int(max_pairs))]
        ]
        body["results_truncated"] = len(pairs) > max(0, int(max_pairs))
    return body


def offline_query(
    index_path: str,
    *,
    op: str = "join",
    window: Optional[Sequence[int]] = None,
    kernel: str = "auto",
    include_pairs: bool = False,
    max_pairs: int = 1000,
    join_options: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """One-shot offline execution of a service request: reconstruct the
    relations from the snapshot, run ``OIPJoin(index_path=...)`` through
    the *file* load path, and summarise with the same helper the service
    uses.  This is the differential oracle the chaos suite compares the
    long-lived service against, bit for bit."""
    if op not in _OPS:
        raise BadRequestError(f"unknown op {op!r}; choose from {_OPS}")
    checked = _check_window(window) if op == "lookup" else None
    generation = ServingGeneration.load(index_path)
    kwargs = generation.join_kwargs()
    if join_options:
        kwargs.update(join_options)
    join = OIPJoin(index_path=index_path, kernel=kernel, **kwargs)
    result = join.join(generation.outer, generation.inner)
    return summarize_result(
        result,
        op=op,
        window=checked,
        generation=generation.generation,
        include_pairs=include_pairs,
        max_pairs=max_pairs,
    )


class JoinService:
    """A bounded-concurrency overlap-join service over one snapshot
    path, surviving refreshes, corruption, overload, and shutdown.

    Thread-safe: any number of threads may call :meth:`query`,
    :meth:`refresh`, :meth:`health`, and :meth:`drain` concurrently.
    """

    def __init__(
        self,
        index_path: str,
        *,
        max_active: int = 4,
        max_queued: int = 16,
        admit_timeout_s: Optional[float] = 5.0,
        default_deadline_ms: Optional[float] = None,
        kernel: str = "auto",
        max_retries: int = 1,
        retry_backoff_s: float = 0.02,
        breaker: Optional[CircuitBreaker] = None,
        metrics: Optional[MetricsRegistry] = None,
        join_options: Optional[Dict[str, Any]] = None,
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
        tracing: bool = False,
        trace_capacity: int = 256,
        trace_max_depth: Optional[int] = 3,
        query_log: Optional[QueryLog] = None,
        result_cache_size: int = 0,
        shards: Optional[int] = None,
        shard_ranges: Optional[Sequence[Sequence[int]]] = None,
        shard_backend: str = "thread",
        worker_id: Optional[int] = None,
        roster_path: Optional[str] = None,
    ) -> None:
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        if retry_backoff_s < 0:
            raise ValueError(
                f"retry_backoff_s must be >= 0, got {retry_backoff_s}"
            )
        self.index_path = index_path
        self.kernel = kernel
        self.max_retries = max_retries
        self.retry_backoff_s = retry_backoff_s
        self.admit_timeout_s = admit_timeout_s
        self.default_deadline_ms = default_deadline_ms
        self._clock = clock
        self._sleep = sleep
        self._snapshots = SnapshotManager(index_path, clock=clock)
        self._admission = AdmissionController(
            max_active=max_active, max_queued=max_queued
        )
        self._breaker = (
            breaker if breaker is not None else CircuitBreaker()
        )
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        #: Extra ``OIPJoin`` keywords applied to every query (fault
        #: policies, parallelism, chaos hooks); mutate through
        #: :meth:`set_join_option` only.
        self._join_options: Dict[str, Any] = dict(join_options or {})
        self._lock = threading.Lock()
        self._idle = threading.Condition(self._lock)
        self._status = STARTING
        self._inflight = 0
        self._tokens: set = set()
        self._obs_lock = threading.Lock()
        self.started_at: Optional[float] = None
        #: When true, each query runs under its own request
        #: :class:`~repro.obs.Tracer` whose finished tree lands in
        #: :attr:`traces` (the ``tracedump`` op).  Off by default — the
        #: telemetry-off path is byte-for-byte the pre-telemetry path.
        self.tracing = bool(tracing)
        self.traces = TraceBuffer(trace_capacity) if self.tracing else None
        #: Span-nesting cap for request traces.  The default (3) keeps
        #: service.query -> phases -> join internals (index load, probe)
        #: and drops the per-partition spans below — thousands per probe
        #: — which would otherwise dominate the telemetry overhead
        #: budget.  ``None`` records the full tree (offline analysis).
        self.trace_max_depth = trace_max_depth
        #: NDJSON event sink; :data:`~repro.obs.log.NULL_QUERY_LOG`
        #: swallows everything when no log is configured.
        self.query_log = query_log if query_log is not None else NULL_QUERY_LOG
        #: Per-generation LRU of finished response bodies; ``None``
        #: disables caching entirely so the cache-off response bodies
        #: are byte-for-byte the pre-cache bodies (no ``cached`` field).
        self.result_cache = (
            ResultCache(result_cache_size) if result_cache_size > 0 else None
        )
        #: Service-default time-shard router (``--shards`` /
        #: ``--shard-ranges``); per-request ``shards`` overrides it.
        self.shard_backend = shard_backend
        self._router = (
            TimeShardRouter(
                shards=shards,
                ranges=shard_ranges,
                backend=shard_backend,
                metrics=self.metrics,
            )
            if shards is not None or shard_ranges is not None
            else None
        )
        #: Identity within a multi-process worker pool (``None`` when
        #: running single-process) and the roster file the parent
        #: supervisor maintains for cross-worker stats aggregation.
        self.worker_id = worker_id
        self.roster_path = roster_path

    # -- configuration -------------------------------------------------------

    def set_join_option(self, key: str, value: Any) -> None:
        """Set (or, with ``value=None``... no: remove via
        :meth:`clear_join_option`) one per-query join keyword."""
        with self._lock:
            self._join_options[key] = value

    def clear_join_option(self, key: str) -> None:
        with self._lock:
            self._join_options.pop(key, None)

    # -- observability plumbing ----------------------------------------------

    def _count(self, name: str, amount: int = 1) -> None:
        with self._obs_lock:
            self.metrics.counter(name).inc(amount)

    def _gauge(self, name: str, value: float) -> None:
        with self._obs_lock:
            self.metrics.gauge(name).set(value)

    def _observe(self, name: str, value: float) -> None:
        with self._obs_lock:
            self.metrics.histogram(
                name, buckets=DEFAULT_LATENCY_BUCKETS_MS
            ).observe(value)

    def publish_metrics(self) -> Dict[str, Any]:
        """Refresh every gauge from live state and return the whole
        registry snapshot (the ``metrics`` protocol op)."""
        described = self._snapshots.describe()
        with self._lock:
            status = self._status
            inflight = self._inflight
        with self._obs_lock:
            registry = self.metrics
            registry.gauge("service.state").set(_STATE_VALUES[status])
            registry.gauge("service.inflight").set(inflight)
            registry.gauge("service.queue_depth").set(
                self._admission.queued
            )
            if described["generation"] is not None:
                registry.gauge("service.generation").set(
                    described["generation"]
                )
                registry.gauge("service.generation.age_s").set(
                    described["generation_age_s"]
                )
            registry.gauge("service.retired_generations").set(
                described["retired_generations"]
            )
            registry.gauge("service.breaker.state").set(
                _BREAKER_VALUES[self._breaker.state]
            )
            if self.result_cache is not None:
                cache_stats = self.result_cache.stats()
                registry.gauge("service.cache.size").set(
                    cache_stats["size"]
                )
                registry.gauge("service.cache.capacity").set(
                    cache_stats["capacity"]
                )
            self._admission.publish_metrics(registry)
            self._breaker.publish_metrics(registry)
            return registry.snapshot()

    # -- lifecycle -----------------------------------------------------------

    @property
    def status(self) -> str:
        return self._status

    @property
    def breaker(self) -> CircuitBreaker:
        return self._breaker

    @property
    def admission(self) -> AdmissionController:
        return self._admission

    @property
    def snapshots(self) -> SnapshotManager:
        return self._snapshots

    def start(self) -> int:
        """Load the initial generation and begin serving.  Raises
        :class:`~repro.storage.snapshot.SnapshotError` when the snapshot
        cannot serve (there is no older generation to degrade to)."""
        with self._lock:
            if self._status != STARTING:
                raise ServiceUnavailableError(
                    f"cannot start from state {self._status!r}",
                    status=self._status,
                )
        generation = self._snapshots.load()
        with self._lock:
            self._status = SERVING
            self.started_at = self._clock()
        self._gauge("service.state", _STATE_VALUES[SERVING])
        self._gauge("service.generation", generation.generation)
        self.query_log.emit(
            "service.started",
            generation=generation.generation,
            index_path=self.index_path,
        )
        return generation.generation

    def refresh(self, *, force: bool = False) -> Dict[str, Any]:
        """Hot-swap to the snapshot currently on disk (no downtime; see
        :class:`~repro.service.snapshots.SnapshotManager`)."""
        self.query_log.emit("snapshot.refresh.started", force=force)
        try:
            report = self._snapshots.refresh(force=force)
        except SnapshotSwapRejectedError as error:
            self._count("service.swap.rejected")
            self._count(f"service.swap.rejected.{error.reason}")
            self.query_log.emit(
                "snapshot.swap_rejected",
                level="error",
                reason=error.reason,
                message=str(error),
            )
            raise
        if report["swapped"]:
            self._count("service.swap.count")
            self._observe("service.swap.latency_ms", report["elapsed_ms"])
            self._gauge("service.generation", report["generation"])
            self.query_log.emit(
                "snapshot.swapped",
                generation=report["generation"],
                elapsed_ms=report["elapsed_ms"],
            )
            if self.result_cache is not None:
                # Second staleness defense (the first is the generation
                # id inside every cache key): a swap empties the cache
                # wholesale so retired generations cannot linger.
                dropped = self.result_cache.invalidate()
                self._count("service.cache.invalidations")
                if dropped:
                    self._count("service.cache.invalidated_entries", dropped)
                self.query_log.emit(
                    "cache.invalidated",
                    generation=report["generation"],
                    entries=dropped,
                )
        else:
            self._count("service.swap.unchanged")
            self.query_log.emit("snapshot.unchanged", level="debug")
        return report

    def health(self) -> Dict[str, Any]:
        """Liveness + readiness probe material."""
        with self._lock:
            status = self._status
            inflight = self._inflight
        described = self._snapshots.describe()
        return {
            "status": status,
            "pid": os.getpid(),
            "worker": self.worker_id,
            "ready": status == SERVING
            and described["generation"] is not None,
            "generation": described["generation"],
            "generation_age_s": described["generation_age_s"],
            "queries_served": described["queries_served"],
            "retired_generations": described["retired_generations"],
            "swaps": described["swaps"],
            "swaps_rejected": described["swaps_rejected"],
            "inflight": inflight,
            "queue_depth": self._admission.queued,
            "admission": self._admission.stats.snapshot(),
            "breaker": self._breaker.snapshot(),
            "uptime_s": (
                None
                if self.started_at is None
                else max(0.0, self._clock() - self.started_at)
            ),
        }

    def drain(
        self,
        timeout_s: float = 30.0,
        hard_stop_timeout_s: float = 5.0,
    ) -> Dict[str, Any]:
        """Graceful shutdown: stop admitting, wait for in-flight queries
        (including queued ones already submitted), then cancel whatever
        outlived *timeout_s* through the cooperative tokens.

        Zero-loss contract: every query admitted before the drain began
        either completes normally or unwinds into a structured
        ``cancelled`` error — none vanish.
        """
        started = self._clock()
        with self._lock:
            already = self._status in (DRAINING, STOPPED)
            self._status = DRAINING if not already else self._status
        if already:
            return {"drained": True, "cancelled": 0, "waited_ms": 0.0}
        self._gauge("service.state", _STATE_VALUES[DRAINING])
        self.query_log.emit(
            "drain.started", timeout_s=timeout_s, inflight=self._inflight
        )
        deadline = started + max(0.0, timeout_s)
        with self._lock:
            while self._inflight > 0:
                remaining = deadline - self._clock()
                if remaining <= 0:
                    break
                self._idle.wait(remaining)
            drained = self._inflight == 0
        cancelled = 0
        if not drained:
            with self._lock:
                victims = list(self._tokens)
            for token in victims:
                token.cancel()
                cancelled += 1
            self._count("service.drain.cancelled", cancelled)
            hard_deadline = self._clock() + max(0.0, hard_stop_timeout_s)
            with self._lock:
                while self._inflight > 0:
                    remaining = hard_deadline - self._clock()
                    if remaining <= 0:
                        break
                    self._idle.wait(remaining)
                drained = self._inflight == 0
        with self._lock:
            self._status = STOPPED
        self._gauge("service.state", _STATE_VALUES[STOPPED])
        report = {
            "drained": drained,
            "cancelled": cancelled,
            "waited_ms": (self._clock() - started) * 1e3,
        }
        self.query_log.emit(
            "drain.finished",
            level="info" if drained else "warning",
            **report,
        )
        return report

    # -- queries -------------------------------------------------------------

    def query(
        self,
        op: str = "join",
        *,
        window: Optional[Sequence[int]] = None,
        deadline_ms: Optional[float] = None,
        kernel: Optional[str] = None,
        include_pairs: bool = False,
        max_pairs: int = 1000,
        trace_id: Optional[str] = None,
        shards: Optional[int] = None,
    ) -> Dict[str, Any]:
        """Execute one overlap join (or windowed lookup) against the
        pinned current generation.  Raises a :class:`ServiceError`
        subclass with a stable ``code`` on any failure.

        ``shards`` requests time-shard scatter-gather execution for this
        query (overriding any service-level shard plan); the answer
        pairs and fingerprint stay bit-identical to the unsharded join.

        ``trace_id`` is the wire-propagated correlation id (typically
        stamped by :class:`~repro.service.client.ServiceClient`); when
        omitted and telemetry is on, the service mints one.  Every
        response — success or structured failure — carries the id, and
        with :attr:`tracing` enabled the request's span tree
        (``service.query`` → admission wait / snapshot pin / join
        phases) lands in :attr:`traces` under the same id.
        """
        if op not in _OPS:
            raise BadRequestError(
                f"unknown op {op!r}; choose from {_OPS}"
            )
        checked_window = _check_window(window) if op == "lookup" else None
        if shards is not None:
            try:
                shards = int(shards)
            except (TypeError, ValueError):
                raise BadRequestError(
                    f"shards must be an integer, got {shards!r}"
                ) from None
            if shards < 1:
                raise BadRequestError(
                    f"shards must be >= 1, got {shards}"
                )
        if deadline_ms is None:
            deadline_ms = self.default_deadline_ms
        if deadline_ms is not None and deadline_ms <= 0:
            raise BadRequestError(
                f"deadline_ms must be positive, got {deadline_ms}"
            )
        if trace_id is None and (self.tracing or self.query_log):
            trace_id = new_trace_id()
        tracer = (
            Tracer(
                clock=self._clock,
                trace_id=trace_id,
                max_depth=self.trace_max_depth,
            )
            if self.tracing
            else NULL_TRACER
        )
        submitted = self._clock()
        with self._lock:
            if self._status != SERVING:
                raise ServiceUnavailableError(
                    f"service is {self._status}; not accepting queries",
                    status=self._status,
                )
            self._inflight += 1
        self._count("service.queries.submitted")
        self._gauge("service.inflight", self._inflight)
        try:
            with tracer.span("service.query", op=op):
                body = self._admitted_query(
                    op,
                    checked_window,
                    deadline_ms,
                    kernel,
                    include_pairs,
                    max_pairs,
                    submitted,
                    tracer,
                    trace_id,
                    shards,
                )
            service_ms = (self._clock() - submitted) * 1e3
            if trace_id is not None:
                body["trace_id"] = trace_id
            body["service_ms"] = service_ms
            self._observe(f"service.op.{op}.latency_ms", service_ms)
            log_fields: Dict[str, Any] = {
                "trace_id": trace_id,
                "elapsed_ms": service_ms,
                "op": op,
                "generation": body.get("generation"),
                "pairs": body.get("pairs"),
                "attempts": body.get("attempts"),
            }
            if "cached" in body:
                log_fields["cached"] = body["cached"]
            self.query_log.query_event("query.completed", **log_fields)
            return body
        except ServiceError as error:
            # Satellite fix: shed/deadline/unavailable responses used to
            # leave ``elapsed_ms`` unset, making overload invisible in
            # the log.  Every structured failure now reports how long
            # the request held the service before being turned away.
            service_ms = (self._clock() - submitted) * 1e3
            error.detail.setdefault("elapsed_ms", service_ms)
            if trace_id is not None:
                error.detail.setdefault("trace_id", trace_id)
            self._count("service.queries.failed")
            self._count(f"service.queries.failed.{error.code}")
            self._observe(f"service.op.{op}.latency_ms", service_ms)
            self.query_log.emit(
                "query.failed",
                level="warning",
                trace_id=trace_id,
                op=op,
                code=error.code,
                retriable=error.retriable,
                elapsed_ms=service_ms,
            )
            raise
        finally:
            with self._lock:
                self._inflight -= 1
                if self._inflight == 0:
                    self._idle.notify_all()
            self._gauge("service.inflight", self._inflight)
            self._capture_trace(tracer)

    def _capture_trace(self, tracer: Any) -> None:
        """Deposit a finished request trace and observe phase latencies."""
        if not tracer.enabled:
            return
        root = tracer.last_root
        if root is None:
            return
        for child in root.children:
            self._observe(
                f"service.phase.{child.name}.latency_ms", child.duration_ms
            )
        if self.traces is not None:
            self.traces.add(root.as_dict())

    def _admitted_query(
        self,
        op: str,
        window: Optional[Tuple[int, int]],
        deadline_ms: Optional[float],
        kernel: Optional[str],
        include_pairs: bool,
        max_pairs: int,
        submitted: float,
        tracer: Any = NULL_TRACER,
        trace_id: Optional[str] = None,
        shards: Optional[int] = None,
    ) -> Dict[str, Any]:
        # Cache probe happens *before* admission: a hit costs no slot,
        # no queue wait, and no snapshot pin (so ``queries_served``
        # counts executed joins, not cache hits).  Reading
        # ``_snapshots.current`` without pinning is a benign race — a
        # concurrent swap at worst misses the cache, never serves stale,
        # because the retiring generation's entries are keyed under its
        # own id and invalidated wholesale the moment the swap lands.
        cache = self.result_cache
        fingerprint: Optional[str] = None
        if cache is not None:
            fingerprint = request_fingerprint(
                op=op,
                window=window,
                kernel=kernel if kernel is not None else self.kernel,
                shards=shards,
                include_pairs=include_pairs,
                max_pairs=max_pairs,
            )
            current = self._snapshots.current
            if current is not None:
                with tracer.span("cache.probe") as probe_span:
                    hit = cache.lookup(current.generation, fingerprint)
                    probe_span.set("hit", hit is not None)
                if hit is not None:
                    self._count("service.cache.hits")
                    self._count("service.queries.completed")
                    hit["cached"] = True
                    return hit
            self._count("service.cache.misses")
        admit_timeout = self.admit_timeout_s
        if deadline_ms is not None:
            budget_window = deadline_ms / 1e3
            admit_timeout = (
                budget_window
                if admit_timeout is None
                else min(admit_timeout, budget_window)
            )
        # ``admit()`` performs the slot/queue wait on __enter__, so the
        # ``admission.wait`` span times exactly the time spent queued —
        # a shed request dies inside it, leaving a terminal span with an
        # ``error`` attribute in the request trace.
        admit = self._admission.admit(timeout=admit_timeout)
        try:
            with tracer.span("admission.wait") as wait_span:
                admit.__enter__()
                wait_span.set("admitted", True)
        except AdmissionRejectedError as error:
            self._count("service.queries.shed")
            raise ServiceOverloadError(
                f"service overloaded: {error}",
                active=error.active,
                queued=error.queued,
                max_active=error.max_active,
                max_queued=error.max_queued,
                timed_out=error.timed_out,
                retry_after_ms=(self.admit_timeout_s or 1.0) * 1e3,
            ) from error
        try:
            self._count("service.queries.admitted")
            with tracer.span("snapshot.pin") as pin_span:
                generation = self._snapshots.acquire()
                pin_span.set("generation", generation.generation)
            try:
                body = self._execute(
                    generation,
                    op,
                    window,
                    deadline_ms,
                    kernel,
                    include_pairs,
                    max_pairs,
                    submitted,
                    tracer,
                    trace_id,
                    shards,
                )
                if cache is not None and fingerprint is not None:
                    # Stored before ``trace_id``/``service_ms`` stamping
                    # (those are per-request) and deep-copied inside the
                    # cache, so a hit replays exactly the deterministic
                    # part of the body.
                    cache.store(generation.generation, fingerprint, body)
                    body["cached"] = False
                return body
            finally:
                self._snapshots.release(generation)
        finally:
            admit.__exit__(None, None, None)

    def _execute(
        self,
        generation: ServingGeneration,
        op: str,
        window: Optional[Tuple[int, int]],
        deadline_ms: Optional[float],
        kernel: Optional[str],
        include_pairs: bool,
        max_pairs: int,
        submitted: float,
        tracer: Any = NULL_TRACER,
        trace_id: Optional[str] = None,
        shards: Optional[int] = None,
    ) -> Dict[str, Any]:
        token = CancellationToken()
        with self._lock:
            self._tokens.add(token)
            options = dict(self._join_options)
        if shards is not None:
            router: Optional[TimeShardRouter] = TimeShardRouter(
                shards=shards,
                backend=self.shard_backend,
                metrics=self.metrics,
            )
        else:
            router = self._router
        try:
            attempts = 0
            while True:
                budget = None
                if deadline_ms is not None:
                    remaining_ms = deadline_ms - (
                        (self._clock() - submitted) * 1e3
                    )
                    if remaining_ms <= 0:
                        raise ServiceError(
                            f"deadline of {deadline_ms:.0f} ms exhausted "
                            "before execution",
                            code="deadline",
                            retriable=True,
                        )
                    budget = QueryBudget(deadline_ms=remaining_ms)
                kwargs = generation.join_kwargs()
                kwargs.update(options)
                resolved_kernel = (
                    kernel if kernel is not None else self.kernel
                )
                try:
                    if router is not None:
                        # Scatter-gather: each shard gets a *fresh* join
                        # (OIPCREATE over its slice — the stored
                        # partition lists describe the whole domain, not
                        # a shard), sharing the cancellation token and
                        # breaker, with a per-shard budget cut from the
                        # query's absolute deadline, so governance spans
                        # shards.
                        # The request tracer stays in this thread (the
                        # router's scatter/merge spans); per-shard joins
                        # run untraced in pool threads.
                        shard_kwargs = dict(kwargs)

                        def join_factory() -> OIPJoin:
                            # OIPJoin measures ``deadline_ms`` from its
                            # own start, so a shard wave that queued
                            # behind earlier shards would restart the
                            # clock if every shard shared one relative
                            # budget.  Re-derive each shard's budget
                            # from the query's *absolute* deadline at
                            # the moment the shard actually starts; a
                            # shard starting past the deadline gets a
                            # zero budget and fails fast at preflight.
                            shard_budget = budget
                            if deadline_ms is not None:
                                shard_budget = QueryBudget(
                                    deadline_ms=max(
                                        0.0,
                                        deadline_ms
                                        - (self._clock() - submitted)
                                        * 1e3,
                                    )
                                )
                            return OIPJoin(
                                kernel=resolved_kernel,
                                budget=shard_budget,
                                cancellation=token,
                                circuit_breaker=self._breaker,
                                **shard_kwargs,
                            )

                        result = router.execute(
                            generation.outer,
                            generation.inner,
                            join_factory=join_factory,
                            tracer=tracer,
                        )
                    else:
                        if tracer.enabled:
                            # The join's own phase spans (oipcreate,
                            # probe, kernels) nest under the open
                            # service.query span.
                            kwargs["tracer"] = tracer
                        join = OIPJoin(
                            index_provider=generation,
                            kernel=resolved_kernel,
                            budget=budget,
                            cancellation=token,
                            circuit_breaker=self._breaker,
                            **kwargs,
                        )
                        result = join.join(
                            generation.outer, generation.inner
                        )
                    break
                except BudgetExceededError as error:
                    raise ServiceError(
                        f"deadline exceeded ({error.reason}) after "
                        f"{error.elapsed_ms:.1f} ms and "
                        f"{error.partitions_completed} partitions",
                        code="deadline",
                        retriable=True,
                        detail={
                            "reason": error.reason,
                            "partitions_completed": (
                                error.partitions_completed
                            ),
                        },
                    ) from error
                except StorageFaultError as error:
                    attempts += 1
                    if attempts > self.max_retries:
                        raise ServiceError(
                            f"storage fault after {attempts} attempt(s): "
                            f"{error}",
                            code="storage_fault",
                            retriable=True,
                            detail={"attempts": attempts},
                        ) from error
                    self._count("service.queries.retried")
                    tracer.event(
                        "storage.retry", attempt=attempts, error=str(error)
                    )
                    self.query_log.emit(
                        "query.retry",
                        level="warning",
                        trace_id=trace_id,
                        attempt=attempts,
                        max_retries=self.max_retries,
                        error=str(error),
                    )
                    if self.retry_backoff_s:
                        self._sleep(
                            self.retry_backoff_s * (2 ** (attempts - 1))
                        )
            if not result.completed:
                # Hard-stopped mid-drain (or externally cancelled): the
                # partial result is discarded, the client gets a
                # structured error — never silent data loss.
                self._count("service.queries.cancelled")
                raise ServiceError(
                    f"query cancelled after {result.elapsed_ms:.1f} ms "
                    f"with {result.cardinality} partial pairs",
                    code="cancelled",
                    retriable=True,
                    detail={"partial_pairs": result.cardinality},
                )
            body = summarize_result(
                result,
                op=op,
                window=window,
                generation=generation.generation,
                include_pairs=include_pairs,
                max_pairs=max_pairs,
            )
            body["attempts"] = attempts + 1
            self._count("service.queries.completed")
            self._observe(
                "service.query.latency_ms",
                (self._clock() - submitted) * 1e3,
            )
            return body
        finally:
            with self._lock:
                self._tokens.discard(token)

    # -- telemetry views -----------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        """The ``service_stats`` document: per-endpoint and per-phase
        latency quantiles plus the ``service.*`` counters.

        Quantiles are deterministic bucket interpolations (see
        :mod:`repro.obs.quantiles`) over the fixed latency buckets, so
        two captures of the same traffic agree exactly.  The shape is
        versioned and diffable with ``repro compare`` — capture one
        document before and one after a change and the quantile deltas
        gate tail latency the way run reports gate phase time.
        """
        snapshot = self.publish_metrics()
        histograms = snapshot.get("histograms", {})
        endpoints: Dict[str, Any] = {}
        phases: Dict[str, Any] = {}
        for name, hist in histograms.items():
            if name.startswith("service.op.") and name.endswith(
                ".latency_ms"
            ):
                key = name[len("service.op."):-len(".latency_ms")]
                endpoints[key] = summarize_latency(hist)
            elif name.startswith("service.phase.") and name.endswith(
                ".latency_ms"
            ):
                key = name[len("service.phase."):-len(".latency_ms")]
                phases[key] = summarize_latency(hist)
        counters = {
            name: value
            for name, value in snapshot.get("counters", {}).items()
            if name.startswith("service.")
        }
        health = self.health()
        document: Dict[str, Any] = {
            "kind": "service_stats",
            "version": STATS_VERSION,
            "status": health["status"],
            "generation": health["generation"],
            "uptime_s": health["uptime_s"],
            "queries_served": health["queries_served"],
            "endpoints": endpoints,
            "phases": phases,
            "counters": counters,
            "tracing": self.tracing,
            "slow_query_ms": self.query_log.slow_query_ms,
        }
        if self.result_cache is not None:
            cache_stats = self.result_cache.stats()
            lookups = cache_stats["hits"] + cache_stats["misses"]
            cache_stats["hit_rate"] = (
                cache_stats["hits"] / lookups if lookups else 0.0
            )
            document["cache"] = cache_stats
        if self.worker_id is not None:
            document["worker"] = {"id": self.worker_id, "pid": os.getpid()}
        if self.traces is not None:
            document["traces"] = {
                "buffered": len(self.traces),
                "dropped": self.traces.dropped,
                "capacity": self.traces.capacity,
            }
        if self.query_log:
            document["log"] = {
                "emitted": self.query_log.emitted,
                "dropped": self.query_log.dropped,
            }
        return document

    def tracedump(
        self,
        trace_id: Optional[str] = None,
        limit: Optional[int] = None,
    ) -> Dict[str, Any]:
        """Recent finished request traces (the ``tracedump`` op)."""
        if self.traces is None:
            return {"tracing": False, "traces": [], "dropped": 0}
        return {
            "tracing": True,
            "traces": self.traces.dump(trace_id=trace_id, limit=limit),
            "dropped": self.traces.dropped,
        }

    # -- protocol dispatch ---------------------------------------------------

    def handle_request(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """Dict-in/dict-out protocol entry (shared by the TCP server,
        the stdio loop, and in-process tests).  Never raises: every
        failure becomes a structured error response."""
        request_id = None
        trace_id = None
        try:
            if not isinstance(request, dict):
                raise BadRequestError(
                    f"request must be a JSON object, got "
                    f"{type(request).__name__}"
                )
            request_id = request.get("id")
            trace_id = trace_context(request)
            op = request.get("op")
            if op in _OPS:
                body = self.query(
                    op,
                    window=request.get("window"),
                    deadline_ms=request.get("deadline_ms"),
                    kernel=request.get("kernel"),
                    include_pairs=bool(request.get("include_pairs")),
                    max_pairs=int(request.get("max_pairs", 1000)),
                    trace_id=trace_id,
                    shards=request.get("shards"),
                )
            elif op == "health":
                body = self.health()
            elif op == "metrics":
                body = {"metrics": self.publish_metrics()}
            elif op == "stats":
                # In a worker pool the ``stats`` op answers for the
                # whole fleet (satellite fix: ``repro stats`` used to
                # report only the one process that happened to take the
                # connection); ``stats_local`` keeps the single-process
                # view addressable.
                if self.roster_path is not None:
                    from .aggregate import aggregate_stats

                    body = {"stats": aggregate_stats(self)}
                else:
                    body = {"stats": self.stats()}
            elif op == "stats_local":
                body = {"stats": self.stats()}
            elif op == "tracedump":
                limit = request.get("limit")
                body = self.tracedump(
                    trace_id=request.get("filter_trace_id"),
                    limit=None if limit is None else int(limit),
                )
            elif op == "refresh":
                body = self.refresh(
                    force=bool(request.get("force", False))
                )
            elif op == "ping":
                body = {"pong": True}
            else:
                raise BadRequestError(f"unknown op {op!r}")
        except ServiceError as error:
            response = {
                "id": request_id,
                "ok": False,
                "error": error.to_wire(),
            }
            wire_trace = error.detail.get("trace_id", trace_id)
            if wire_trace is not None:
                response["trace_id"] = wire_trace
            return response
        except Exception as error:  # noqa: BLE001 - protocol boundary
            response = {
                "id": request_id,
                "ok": False,
                "error": {
                    "code": "internal",
                    "message": f"{type(error).__name__}: {error}",
                    "retriable": False,
                    "detail": {},
                },
            }
            if trace_id is not None:
                response["trace_id"] = trace_id
            return response
        response = {"id": request_id, "ok": True}
        response.update(body)
        if trace_id is not None:
            response.setdefault("trace_id", trace_id)
        return response
