"""Network front-ends for :class:`~repro.service.service.JoinService`.

:class:`ServiceServer` is a threaded TCP server speaking the
line-delimited JSON protocol; :func:`serve_stdio` runs the same protocol
over a pipe.  Both are thin: every request funnels into
``JoinService.handle_request`` — admission, breaker, pinning, and error
shaping all live in the service, so an in-process test and a socket
client observe identical behaviour.

Shutdown paths:

* ``{"op": "shutdown"}`` from any client → acknowledge, then drain.
* SIGTERM / SIGINT on ``python -m repro serve`` → drain.

Drain semantics are the service's: stop admitting, finish in-flight
queries up to ``--drain-timeout-s``, hard-stop stragglers after
``--hard-stop-timeout-s`` with structured ``cancelled`` errors.
"""

from __future__ import annotations

import socket
import socketserver
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable, Dict, Optional

from .errors import ServiceError
from .protocol import decode_line, encode_message
from .service import JoinService

__all__ = ["ServiceServer", "MetricsExporter", "serve_stdio"]


class _Handler(socketserver.StreamRequestHandler):
    """One connection: read frames, dispatch, write responses."""

    def handle(self) -> None:  # pragma: no cover - exercised via sockets
        server: "ServiceServer" = self.server.context  # type: ignore[attr-defined]
        while True:
            try:
                line = self.rfile.readline()
            except (OSError, ValueError):
                return
            if not line:
                return
            try:
                message = decode_line(line)
            except ServiceError as error:
                self._reply({"id": None, "ok": False, "error": error.to_wire()})
                continue
            if message is None:
                continue
            if message.get("op") == "shutdown":
                self._reply(
                    {
                        "id": message.get("id"),
                        "ok": True,
                        "stopping": True,
                    }
                )
                if server.on_shutdown_request is not None:
                    server.on_shutdown_request()
                else:
                    server.initiate_shutdown()
                return
            self._reply(server.service.handle_request(message))

    def _reply(self, response: Dict[str, Any]) -> None:
        try:
            self.wfile.write(encode_message(response))
            self.wfile.flush()
        except (OSError, ValueError):
            pass


class _TCPServer(socketserver.ThreadingTCPServer):
    daemon_threads = True
    allow_reuse_address = True
    #: Backpointer to the owning :class:`ServiceServer`.
    context: Optional["ServiceServer"] = None

    def __init__(
        self,
        server_address: Any,
        handler_class: Any,
        *,
        listener: Optional[socket.socket] = None,
    ) -> None:
        if listener is None:
            super().__init__(server_address, handler_class)
            return
        # Adopt an already-bound, already-listening socket — the
        # pre-fork worker model: the parent binds once, every forked
        # worker accepts on the inherited fd and the kernel balances
        # connections across them.
        super().__init__(
            listener.getsockname(), handler_class, bind_and_activate=False
        )
        self.socket.close()
        self.socket = listener
        self.server_address = listener.getsockname()


class _MetricsHandler(BaseHTTPRequestHandler):
    """GET /metrics → live Prometheus exposition of the service registry."""

    def do_GET(self) -> None:  # pragma: no cover - exercised via sockets
        service: JoinService = self.server.service  # type: ignore[attr-defined]
        if self.path.split("?", 1)[0] not in ("/metrics", "/"):
            self.send_response(404)
            self.end_headers()
            return
        try:
            service.publish_metrics()
            body = service.metrics.to_prometheus_text().encode("utf-8")
        except Exception as error:  # noqa: BLE001 - exposition boundary
            self.send_response(500)
            self.end_headers()
            self.wfile.write(f"# scrape failed: {error}\n".encode("utf-8"))
            return
        self.send_response(200)
        self.send_header(
            "Content-Type", "text/plain; version=0.0.4; charset=utf-8"
        )
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format: str, *args: Any) -> None:
        """Scrapes are high-frequency; keep stderr quiet."""


class MetricsExporter:
    """A tiny stdlib HTTP sidecar serving ``GET /metrics``.

    Prometheus scrapes pull text exposition over HTTP, not line-JSON —
    so the exporter listens on its own port next to the wire protocol.
    Each scrape refreshes the gauges (``publish_metrics``) and renders
    the full registry, quantile-ready latency histograms included.
    """

    def __init__(
        self,
        service: JoinService,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self._http = ThreadingHTTPServer((host, port), _MetricsHandler)
        self._http.daemon_threads = True
        self._http.service = service  # type: ignore[attr-defined]
        self._thread: Optional[threading.Thread] = None

    @property
    def host(self) -> str:
        return self._http.server_address[0]

    @property
    def port(self) -> int:
        return self._http.server_address[1]

    def start(self) -> "MetricsExporter":
        self._thread = threading.Thread(
            target=self._http.serve_forever,
            name="oip-metrics-exporter",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        self._http.shutdown()
        self._http.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)


class ServiceServer:
    """Threaded TCP front-end over one :class:`JoinService`.

    ``port=0`` binds an ephemeral port (read it back from ``.port`` —
    the test and CI idiom).  ``start()`` serves from a daemon thread;
    ``shutdown()`` drains the service then stops the listener.
    """

    def __init__(
        self,
        service: JoinService,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        drain_timeout_s: float = 30.0,
        hard_stop_timeout_s: float = 5.0,
        metrics_port: Optional[int] = None,
        listener: Optional[socket.socket] = None,
        on_shutdown_request: Optional[Callable[[], None]] = None,
    ) -> None:
        self.service = service
        self.drain_timeout_s = drain_timeout_s
        self.hard_stop_timeout_s = hard_stop_timeout_s
        #: Worker-mode hook: a client ``shutdown`` op should stop the
        #: whole pool, not just the worker that took the connection, so
        #: the worker forwards the request to its parent supervisor
        #: instead of draining locally.
        self.on_shutdown_request = on_shutdown_request
        self._tcp = _TCPServer((host, port), _Handler, listener=listener)
        self._tcp.context = self
        self._thread: Optional[threading.Thread] = None
        self._stopping = threading.Event()
        self.stopped = threading.Event()
        #: Optional Prometheus sidecar (``metrics_port=0`` → ephemeral).
        self.metrics_exporter: Optional[MetricsExporter] = (
            None
            if metrics_port is None
            else MetricsExporter(service, host=host, port=metrics_port)
        )

    @property
    def host(self) -> str:
        return self._tcp.server_address[0]

    @property
    def port(self) -> int:
        return self._tcp.server_address[1]

    def start(self) -> "ServiceServer":
        self._thread = threading.Thread(
            target=self._tcp.serve_forever,
            name="oip-service-listener",
            daemon=True,
        )
        self._thread.start()
        if self.metrics_exporter is not None:
            self.metrics_exporter.start()
        return self

    def initiate_shutdown(self) -> None:
        """Idempotent, non-blocking shutdown trigger (the ``shutdown``
        op calls this from a handler thread; blocking there would
        deadlock the listener)."""
        if self._stopping.is_set():
            return
        self._stopping.set()
        threading.Thread(
            target=self.shutdown, name="oip-service-drain", daemon=True
        ).start()

    def shutdown(self) -> Dict[str, Any]:
        """Drain the service, then stop the listener.  Safe to call from
        any thread except a handler's own request (use
        :meth:`initiate_shutdown` there)."""
        self._stopping.set()
        report = self.service.drain(
            timeout_s=self.drain_timeout_s,
            hard_stop_timeout_s=self.hard_stop_timeout_s,
        )
        self._tcp.shutdown()
        self._tcp.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        if self.metrics_exporter is not None:
            self.metrics_exporter.stop()
        self.stopped.set()
        return report

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until the server has fully stopped."""
        return self.stopped.wait(timeout)


def serve_stdio(service: JoinService, stdin: Any, stdout: Any) -> int:
    """Run the protocol over a binary stream pair until EOF or a
    ``shutdown`` op; returns the number of frames handled."""
    handled = 0
    for line in stdin:
        try:
            message = decode_line(line)
        except ServiceError as error:
            stdout.write(
                encode_message(
                    {"id": None, "ok": False, "error": error.to_wire()}
                )
            )
            stdout.flush()
            continue
        if message is None:
            continue
        handled += 1
        if message.get("op") == "shutdown":
            stdout.write(
                encode_message(
                    {"id": message.get("id"), "ok": True, "stopping": True}
                )
            )
            stdout.flush()
            service.drain()
            break
        stdout.write(encode_message(service.handle_request(message)))
        stdout.flush()
    return handled
