"""Per-generation result cache for the query service.

A served query is a pure function of ``(snapshot generation, canonical
request)`` — the service's bit-identity contract (every answer matches
the offline oracle for its generation) is exactly what makes the answer
cacheable.  :class:`ResultCache` exploits that: a bounded LRU keyed by
``(generation id, request fingerprint)`` where the fingerprint is a
digest over the canonical request fields (op, predicate window, kernel,
shard plan, pair-shipping options).

Two independent mechanisms keep stale answers impossible:

* the **generation id is part of the key**, so even a fingerprint
  collision across generations cannot alias one generation's answer to
  another's, and
* the cache is **invalidated wholesale on every generation swap**
  (:meth:`ResultCache.invalidate`, called by
  ``JoinService.refresh``), so retired generations do not linger.

Entries are deep-copied on both store and lookup: a caller mutating a
response body (the service stamps ``service_ms`` and ``trace_id`` after
the fact) can never corrupt the cached copy, and two hits never share
mutable state.

The cache is thread-safe and publishes its traffic through the
``service.cache.*`` counter family when the owning service wires a
metrics registry in.
"""

from __future__ import annotations

import copy
import hashlib
import json
import threading
from collections import OrderedDict
from typing import Any, Dict, Optional, Sequence, Tuple

__all__ = ["ResultCache", "request_fingerprint"]


def request_fingerprint(
    *,
    op: str,
    window: Optional[Sequence[int]] = None,
    kernel: str = "auto",
    shards: Optional[int] = None,
    include_pairs: bool = False,
    max_pairs: int = 1000,
) -> str:
    """Canonical digest of one service request.

    Two requests get the same fingerprint iff the service would produce
    byte-identical response bodies for them against the same generation.
    ``shards`` is included even though sharding cannot change the answer
    *pairs* — the merged counters and shard report differ, and a cached
    body must be indistinguishable from a fresh one.
    """
    canonical = json.dumps(
        {
            "op": op,
            "window": None if window is None else [int(window[0]), int(window[1])],
            "kernel": kernel,
            "shards": shards,
            "include_pairs": bool(include_pairs),
            "max_pairs": int(max_pairs),
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


class ResultCache:
    """Bounded, thread-safe LRU of finished response bodies.

    Keys are ``(generation, fingerprint)`` tuples; capacity ``0``
    disables storage entirely (every lookup misses) so call sites do not
    need their own guard.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 0:
            raise ValueError(f"cache capacity must be >= 0, got {capacity}")
        self.capacity = int(capacity)
        self._lock = threading.Lock()
        self._entries: "OrderedDict[Tuple[int, str], Dict[str, Any]]" = (
            OrderedDict()
        )
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0
        self.invalidated_entries = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def lookup(
        self, generation: int, fingerprint: str
    ) -> Optional[Dict[str, Any]]:
        """A deep copy of the cached body, or ``None`` on a miss."""
        key = (generation, fingerprint)
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return copy.deepcopy(entry)

    def store(
        self, generation: int, fingerprint: str, body: Dict[str, Any]
    ) -> None:
        """Deep-copy *body* into the cache, evicting the least recently
        used entry past capacity."""
        if self.capacity <= 0:
            return
        key = (generation, fingerprint)
        entry = copy.deepcopy(body)
        with self._lock:
            self._entries[key] = entry
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1

    def invalidate(self) -> int:
        """Drop every entry (generation swap); returns the count dropped."""
        with self._lock:
            dropped = len(self._entries)
            self._entries.clear()
            self.invalidations += 1
            self.invalidated_entries += dropped
            return dropped

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "capacity": self.capacity,
                "size": len(self._entries),
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "invalidations": self.invalidations,
                "invalidated_entries": self.invalidated_entries,
            }
