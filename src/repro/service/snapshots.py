"""Generation management for the query service: load, validate, swap.

A :class:`ServingGeneration` pins one parsed snapshot generation in
memory — its section bytes, its reconstructed source relations, and a
reference count of the queries currently restoring partition lists from
it.  Pinning is what makes zero-downtime refresh safe: the file on disk
can be atomically replaced (or corrupted, or half-written) at any
moment without affecting a query that already holds a generation.

:class:`SnapshotManager` owns the swap protocol, **load → validate →
swap → drop**:

::

            refresh()
                │
                ▼
        ┌──────────────┐  not loadable   ┌────────────────────┐
        │ fsck_index() │ ───────────────▶│ swap REJECTED:     │
        └──────┬───────┘                 │ old generation     │
               │ loadable                │ keeps serving      │
               ▼                         └────────────────────┘
        ┌──────────────┐  SnapshotError          ▲
        │ parse + re-  │ ────────────────────────┘
        │ construct    │
        └──────┬───────┘
               │ ok
               ▼
        ┌──────────────┐  same generation  ┌──────────────────┐
        │ compare gen  │ ─────────────────▶│ no-op (unchanged)│
        └──────┬───────┘                   └──────────────────┘
               │ newer
               ▼
        ┌──────────────┐   in-flight queries stay pinned to the old
        │ atomic swap  │   generation via refcounts; it is dropped
        └──────────────┘   when the last one releases

The candidate is fully validated *before* the swap, so a torn or
corrupt generation N+1 can never take down a service that was happily
serving generation N — degrade, never die.
"""

from __future__ import annotations

import threading
import time
from dataclasses import replace
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..storage.snapshot import (
    _NON_FATAL_PROBLEMS,
    ParsedSnapshot,
    SnapshotError,
    fsck_index,
)
from .errors import ServiceUnavailableError, SnapshotSwapRejectedError

__all__ = [
    "ServingGeneration",
    "SnapshotManager",
    "join_kwargs_from_meta",
]


def join_kwargs_from_meta(meta: Dict[str, Any]) -> Dict[str, Any]:
    """:class:`~repro.core.join.OIPJoin` keywords that make a join's
    ``_index_expectation`` match *meta* — so a snapshot loads no matter
    which ``k`` mode it was saved under, without the caller re-deriving
    the save-time configuration."""
    from ..storage.device import DeviceProfile
    from ..storage.metrics import CostWeights

    kwargs: Dict[str, Any] = {}
    device = DeviceProfile.main_memory()
    if device.tuples_per_block != meta["tuples_per_block"]:
        device = replace(
            device,
            block_size_bytes=(
                meta["tuples_per_block"] * device.tuple_size_bytes
            ),
        )
    kwargs["device"] = device
    mode = meta["k_mode"]
    if mode == "fixed":
        kwargs["k"] = meta["pinned_k"]
    elif mode == "per_side":
        kwargs["k_outer"] = meta["pinned_k_outer"]
        kwargs["k_inner"] = meta["pinned_k_inner"]
    else:  # derived: only the derivation inputs matter
        kwargs["use_exact_root"] = bool(meta.get("use_exact_root", True))
        kwargs["use_histogram_statistics"] = bool(
            meta.get("use_histogram_statistics", False)
        )
        weights = meta.get("weights")
        if weights is not None:
            kwargs["weights"] = CostWeights(
                cpu=weights["cpu"], io=weights["io"]
            )
    return kwargs


class ServingGeneration:
    """One pinned snapshot generation: parsed sections, reconstructed
    relations, and a refcount of in-flight queries.

    Instances are the :class:`~repro.core.join.OIPJoin`
    ``index_provider``: calling one restores both partition lists from
    the pinned sections — bit-identical to a file load of the same
    generation — regardless of what the file on disk holds by now.
    """

    def __init__(
        self,
        parsed: ParsedSnapshot,
        outer: Any,
        inner: Any,
        *,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.parsed = parsed
        self.outer = outer
        self.inner = inner
        self.path = parsed.path
        self.generation = parsed.generation
        self.loaded_at = clock()
        self._clock = clock
        #: Guarded by the owning manager's lock.
        self.refs = 0
        self.queries_served = 0

    @classmethod
    def load(
        cls, path: str, *, clock: Callable[[], float] = time.monotonic
    ) -> "ServingGeneration":
        """Parse the snapshot at *path* and reconstruct its relations.
        Raises :class:`SnapshotError` when it cannot serve."""
        parsed = ParsedSnapshot.read(path)
        outer, inner = parsed.reconstruct_relations()
        return cls(parsed, outer, inner, clock=clock)

    def __call__(
        self,
        outer: Any,
        inner: Any,
        *,
        storage: Any,
        expected: Optional[Dict[str, Any]] = None,
    ) -> Any:
        """The ``index_provider`` protocol: restore from pinned bytes."""
        return self.parsed.restore(
            outer, inner, storage=storage, expected=expected
        )

    def join_kwargs(self) -> Dict[str, Any]:
        return join_kwargs_from_meta(self.parsed.meta)

    def age_s(self) -> float:
        return max(0.0, self._clock() - self.loaded_at)

    def __repr__(self) -> str:
        return (
            f"ServingGeneration(generation={self.generation}, "
            f"refs={self.refs}, served={self.queries_served})"
        )


class SnapshotManager:
    """Thread-safe generation registry implementing the swap protocol.

    All state transitions happen under one lock; queries pin the current
    generation with :meth:`acquire`/:meth:`release` (or the
    :meth:`pinned` context manager), and :meth:`refresh` swaps in a new
    generation only after it fully validated — a rejected candidate
    raises :class:`SnapshotSwapRejectedError` and leaves the old
    generation serving.
    """

    def __init__(
        self,
        path: str,
        *,
        fsck_on_refresh: bool = True,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.path = path
        self.fsck_on_refresh = fsck_on_refresh
        self._clock = clock
        self._lock = threading.Lock()
        self._current: Optional[ServingGeneration] = None
        #: Superseded generations still pinned by in-flight queries.
        self._retired: List[ServingGeneration] = []
        self.swaps = 0
        self.swaps_rejected = 0
        self.swaps_unchanged = 0
        self.last_swap_ms: Optional[float] = None

    # -- views ---------------------------------------------------------------

    @property
    def generation(self) -> Optional[int]:
        current = self._current
        return None if current is None else current.generation

    @property
    def current(self) -> Optional[ServingGeneration]:
        return self._current

    @property
    def retired(self) -> Tuple[ServingGeneration, ...]:
        with self._lock:
            return tuple(self._retired)

    def describe(self) -> Dict[str, Any]:
        """Health-probe material."""
        with self._lock:
            current = self._current
            return {
                "path": self.path,
                "generation": (
                    None if current is None else current.generation
                ),
                "generation_age_s": (
                    None if current is None else current.age_s()
                ),
                "generation_refs": 0 if current is None else current.refs,
                "queries_served": (
                    0 if current is None else current.queries_served
                ),
                "retired_generations": len(self._retired),
                "swaps": self.swaps,
                "swaps_rejected": self.swaps_rejected,
                "swaps_unchanged": self.swaps_unchanged,
                "last_swap_ms": self.last_swap_ms,
            }

    # -- pinning -------------------------------------------------------------

    def acquire(self) -> ServingGeneration:
        """Pin and return the current generation for one query."""
        with self._lock:
            current = self._current
            if current is None:
                raise ServiceUnavailableError(
                    f"no snapshot generation loaded from {self.path!r}",
                    status="starting",
                )
            current.refs += 1
            return current

    def release(self, generation: ServingGeneration) -> None:
        """Unpin after a query; drops a superseded generation when its
        last query releases it."""
        with self._lock:
            generation.refs -= 1
            generation.queries_served += 1
            if generation.refs <= 0 and generation is not self._current:
                try:
                    self._retired.remove(generation)
                except ValueError:
                    pass

    def pinned(self):
        """``with manager.pinned() as generation: ...``"""
        from contextlib import contextmanager

        @contextmanager
        def _pin():
            generation = self.acquire()
            try:
                yield generation
            finally:
                self.release(generation)

        return _pin()

    # -- swap protocol -------------------------------------------------------

    def load(self) -> ServingGeneration:
        """Initial load (no old generation to fall back to): raises
        :class:`SnapshotError` when the snapshot cannot serve."""
        candidate = ServingGeneration.load(self.path, clock=self._clock)
        with self._lock:
            self._current = candidate
        return candidate

    def refresh(self, *, force: bool = False) -> Dict[str, Any]:
        """Load-validate-swap-drop.  Returns a swap report; raises
        :class:`SnapshotSwapRejectedError` (old generation untouched)
        when the candidate is missing, corrupt, or fails fsck."""
        started = self._clock()
        verdict: Optional[Dict[str, Any]] = None
        if self.fsck_on_refresh:
            verdict = fsck_index(self.path, repair=True)
            if not verdict["loadable"]:
                self.swaps_rejected += 1
                fatal = [
                    problem
                    for problem in verdict["problems"]
                    if problem not in _NON_FATAL_PROBLEMS
                ]
                reason = (
                    fatal[0]
                    if fatal
                    else ("missing" if not verdict["exists"] else "format")
                )
                raise SnapshotSwapRejectedError(
                    f"refresh rejected: snapshot at {self.path!r} is not "
                    f"loadable ({reason})",
                    reason=reason,
                    verdict=verdict,
                )
        try:
            candidate = ServingGeneration.load(self.path, clock=self._clock)
        except SnapshotError as error:
            self.swaps_rejected += 1
            raise SnapshotSwapRejectedError(
                f"refresh rejected: {error}",
                reason=error.reason,
                verdict=verdict,
            ) from error
        with self._lock:
            previous = self._current
            if (
                previous is not None
                and not force
                and candidate.generation == previous.generation
            ):
                self.swaps_unchanged += 1
                return {
                    "swapped": False,
                    "reason": "unchanged",
                    "generation": previous.generation,
                    "elapsed_ms": (self._clock() - started) * 1e3,
                }
            self._current = candidate
            if previous is not None and previous.refs > 0:
                self._retired.append(previous)
            self.swaps += 1
            elapsed_ms = (self._clock() - started) * 1e3
            self.last_swap_ms = elapsed_ms
            return {
                "swapped": True,
                "generation": candidate.generation,
                "previous_generation": (
                    None if previous is None else previous.generation
                ),
                "previous_still_pinned": (
                    previous is not None and previous.refs > 0
                ),
                "elapsed_ms": elapsed_ms,
            }
