"""Line-delimited JSON wire protocol (stdlib only).

One request per line, one response per line, UTF-8 JSON objects.  A
request is ``{"op": ..., "id": ...}`` plus op-specific fields; the
response echoes ``id`` and carries either ``"ok": true`` plus the body
or ``"ok": false`` plus a structured ``error`` object (see
:mod:`repro.service.errors`).  Ops: ``join``, ``lookup``, ``health``,
``metrics``, ``stats``, ``stats_local``, ``tracedump``, ``refresh``,
``ping``, ``shutdown``.  ``join``/``lookup`` accept an optional
``shards`` field (time-shard scatter-gather execution, bit-identical
answers); against a worker pool ``stats`` aggregates across every
worker while ``stats_local`` answers for the receiving process only.

**Trace propagation.**  Any request may carry a trace context,
``"trace": {"trace_id": "<opaque token>"}`` — the client-minted
correlation id.  The server threads the id through its span tree, its
query log and the ``service.*`` failure details, and every response
(success or error) echoes it as a top-level ``"trace_id"`` so the
client can stitch its own spans to the server-side tree fetched via
``tracedump``.  Requests without a context are assigned a server-side
id when server telemetry is on; the field is ignored entirely when
telemetry is off.

The same framing runs over a TCP connection (``python -m repro serve``)
and over stdin/stdout (``--stdio``), so tests and operators can drive a
service with ``nc`` or a pipe.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterator, Optional

from .errors import BadRequestError

__all__ = [
    "MAX_LINE_BYTES",
    "encode_message",
    "decode_line",
    "read_messages",
    "trace_context",
]

#: Upper bound on one protocol line; a client streaming garbage cannot
#: balloon server memory.
MAX_LINE_BYTES = 4 * 1024 * 1024


def encode_message(message: Dict[str, Any]) -> bytes:
    """One wire frame: compact JSON + newline."""
    return (
        json.dumps(message, separators=(",", ":"), sort_keys=True) + "\n"
    ).encode("utf-8")


def decode_line(line: bytes) -> Optional[Dict[str, Any]]:
    """Parse one frame; ``None`` for blank lines, raises
    :class:`BadRequestError` on garbage."""
    if len(line) > MAX_LINE_BYTES:
        raise BadRequestError(
            f"request line of {len(line)} bytes exceeds the "
            f"{MAX_LINE_BYTES}-byte limit"
        )
    stripped = line.strip()
    if not stripped:
        return None
    try:
        message = json.loads(stripped.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise BadRequestError(f"request is not valid JSON: {error}") from error
    if not isinstance(message, dict):
        raise BadRequestError(
            f"request must be a JSON object, got {type(message).__name__}"
        )
    return message


def trace_context(message: Dict[str, Any]) -> Optional[str]:
    """The wire-propagated trace id of *message*, if it carries one.

    Tolerant by design — a missing or malformed ``trace`` field means
    "no context" rather than a protocol error, so telemetry can never
    fail a request that would otherwise succeed.
    """
    trace = message.get("trace")
    if not isinstance(trace, dict):
        return None
    trace_id = trace.get("trace_id")
    if isinstance(trace_id, str) and trace_id:
        return trace_id
    return None


def read_messages(stream: Any) -> Iterator[Dict[str, Any]]:
    """Yield decoded frames from a binary line-iterable stream; garbage
    frames surface as :class:`BadRequestError` to the caller."""
    for line in stream:
        message = decode_line(line)
        if message is not None:
            yield message
