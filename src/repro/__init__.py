"""repro — Overlap Interval Partition Join (SIGMOD 2014 reproduction).

A production-quality Python implementation of Overlap Interval
Partitioning (OIP) and the self-adjusting OIPJOIN from

    Anton Dignös, Michael H. Böhlen, Johann Gamper:
    "Overlap Interval Partition Join", SIGMOD 2014.

together with every baseline the paper evaluates against (loose quadtree,
quadtree, relational interval tree, segment tree, sort-merge join), the
block-storage cost substrate, workload generators, and the analytical
AFR/APA machinery.

Quickstart::

    from repro import TemporalRelation, OIPJoin

    employees = TemporalRelation.from_records(
        [(5, 11, "ann"), (1, 3, "bob")], name="employees"
    )
    projects = TemporalRelation.from_records(
        [(2, 7, "apollo"), (9, 12, "gemini")], name="projects"
    )
    result = OIPJoin().join(employees, projects)
    for employee, project in result.pairs:
        print(employee.payload, "worked during", project.payload)
"""

from .core import (
    DurationHistogram,
    EmptyRelationError,
    HistogramCostModel,
    IncrementalOIP,
    Interval,
    IntervalError,
    JoinCostModel,
    JoinResult,
    KDerivation,
    LazyPartitionList,
    OIPConfiguration,
    OIPJoin,
    OverlapJoinAlgorithm,
    TemporalRelation,
    TemporalTuple,
    cost_model_for,
    derive_k,
    histogram_cost_model,
    oip_create,
)
from .engine.governor import (
    AdmissionController,
    AdmissionRejectedError,
    BudgetExceededError,
    CancellationToken,
    CircuitBreaker,
    QueryBudget,
    QueryCancelledError,
    QueryCheckpoint,
)
from .obs import (
    JsonlSink,
    MetricsRegistry,
    NULL_TRACER,
    Tracer,
    build_report,
    compare_reports,
    load_report,
    write_report,
)
from .storage import (
    BufferPool,
    CostCounters,
    CostWeights,
    DeviceProfile,
    StorageManager,
)

__version__ = "1.0.0"

__all__ = [
    "Interval",
    "IntervalError",
    "TemporalRelation",
    "TemporalTuple",
    "EmptyRelationError",
    "OIPConfiguration",
    "LazyPartitionList",
    "oip_create",
    "OIPJoin",
    "IncrementalOIP",
    "DurationHistogram",
    "HistogramCostModel",
    "histogram_cost_model",
    "JoinResult",
    "OverlapJoinAlgorithm",
    "JoinCostModel",
    "KDerivation",
    "derive_k",
    "cost_model_for",
    "DeviceProfile",
    "BufferPool",
    "StorageManager",
    "CostCounters",
    "CostWeights",
    "QueryBudget",
    "CancellationToken",
    "QueryCheckpoint",
    "AdmissionController",
    "CircuitBreaker",
    "BudgetExceededError",
    "QueryCancelledError",
    "AdmissionRejectedError",
    "Tracer",
    "NULL_TRACER",
    "JsonlSink",
    "MetricsRegistry",
    "build_report",
    "write_report",
    "load_report",
    "compare_reports",
    "__version__",
]
