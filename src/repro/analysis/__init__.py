"""Analytical machinery of the paper: AFR/SFR (Section 5.1), APA
(Section 5.2), duration-complete relations, and the Section 6.3
complexity bounds."""

from .afr import (
    PartitionView,
    average_false_hit_ratio,
    false_hits,
    partition_views_from_lazy_list,
    sum_false_hit_ratio,
    theoretical_afr_bound,
    theoretical_sfr_oip,
)
from .apa import (
    access_count,
    access_count_enumerated,
    apa_bound,
    average_partition_accesses,
    average_partition_accesses_enumerated,
    measured_tightening_factor,
)
from .complexity import (
    OIP_LOWER,
    OIP_UPPER,
    SMJ_LOWER,
    SMJ_UPPER,
    ComplexityBound,
    asymptotic_k,
    growth_factor,
)
from .duration_complete import (
    duration_complete_cardinality,
    duration_complete_relation,
)

__all__ = [
    "PartitionView",
    "partition_views_from_lazy_list",
    "false_hits",
    "sum_false_hit_ratio",
    "average_false_hit_ratio",
    "theoretical_sfr_oip",
    "theoretical_afr_bound",
    "access_count",
    "access_count_enumerated",
    "average_partition_accesses",
    "average_partition_accesses_enumerated",
    "apa_bound",
    "measured_tightening_factor",
    "ComplexityBound",
    "OIP_LOWER",
    "OIP_UPPER",
    "SMJ_LOWER",
    "SMJ_UPPER",
    "growth_factor",
    "asymptotic_k",
    "duration_complete_relation",
    "duration_complete_cardinality",
]
