"""False hits, sum false hit ratio and average false hit ratio
(paper Section 5.1, Definitions 3-5, Lemma 4, Theorem 1).

The measures are defined for *any* partitioning of a valid-time relation,
so the empirical functions here operate on a generic sequence of
:class:`PartitionView` objects (a partition interval plus the tuples stored
under it).  Adapters build that view from an OIP
:class:`~repro.core.lazy_list.LazyPartitionList`, which lets the tests
compare measured values against the paper's closed forms:

* Equation (3): ``SFR`` of OIP for duration-complete relations with tuple
  durations ``l <= d``,
* Equation (4): the same for ``l > d`` (``l`` a multiple of ``d``),
* Theorem 1: ``AFR(OIP) < 1/k`` independent of tuple durations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from ..core.interval import Interval
from ..core.lazy_list import LazyPartitionList
from ..core.relation import TemporalRelation, TemporalTuple

__all__ = [
    "PartitionView",
    "partition_views_from_lazy_list",
    "false_hits",
    "sum_false_hit_ratio",
    "average_false_hit_ratio",
    "theoretical_sfr_oip",
    "theoretical_afr_bound",
]


@dataclass(frozen=True)
class PartitionView:
    """One partition as the analysis sees it: its interval and tuples."""

    interval: Interval
    tuples: Sequence[TemporalTuple]


def partition_views_from_lazy_list(
    partition_list: LazyPartitionList,
) -> List[PartitionView]:
    """Adapter: the non-empty OIP partitions as partition views."""
    config = partition_list.config
    return [
        PartitionView(
            interval=config.partition_interval(node.i, node.j),
            tuples=list(node.run.iter_tuples()),
        )
        for node in partition_list.iter_nodes()
    ]


def false_hits(
    partitions: Sequence[PartitionView],
    query: Interval,
) -> List[TemporalTuple]:
    """Definition 3: tuples fetched with a relevant partition (partition
    interval overlaps *query*) that do not themselves overlap *query*.

    A tuple stored in several fetched partitions would be returned once per
    fetch; under OIP every tuple lives in exactly one partition.
    """
    hits: List[TemporalTuple] = []
    for partition in partitions:
        if not partition.interval.overlaps(query):
            continue
        for tup in partition.tuples:
            if not tup.overlaps_interval(query):
                hits.append(tup)
    return hits


def sum_false_hit_ratio(
    partitions: Sequence[PartitionView],
    relation: TemporalRelation,
    query_duration: int = 1,
) -> float:
    """Definition 4 (generalised per Lemma 4): total false hits over all
    query intervals of duration *query_duration* that overlap the
    relation's time range, divided by the relation cardinality.

    Lemma 4 guarantees the value is the same for every *query_duration*;
    the property tests exercise exactly that.
    """
    if query_duration < 1:
        raise ValueError(
            f"query duration must be >= 1, got {query_duration}"
        )
    if relation.is_empty:
        return 0.0
    time_range = relation.time_range
    total = 0
    first_start = time_range.start - query_duration + 1
    for start in range(first_start, time_range.end + 1):
        query = Interval(start, start + query_duration - 1)
        total += len(false_hits(partitions, query))
    return total / relation.cardinality


def average_false_hit_ratio(
    partitions: Sequence[PartitionView],
    relation: TemporalRelation,
    query_duration: int = 1,
) -> float:
    """Definition 5: ``AFR = SFR / (|U| + q - 1)`` for query duration q."""
    if relation.is_empty:
        return 0.0
    sfr = sum_false_hit_ratio(partitions, relation, query_duration)
    return sfr / (relation.time_range_duration + query_duration - 1)


def theoretical_sfr_oip(k: int, d: int, max_duration: int) -> float:
    """Theorem 1 closed forms for duration-complete relations.

    Equation (3) for ``l <= d``::

        SFR = 2 (l^2 - 3 d l + 3 k d^2 - 3 k d + 3 d - 1) / (3 (2 k d - l + 1))

    Equation (4) for ``l > d`` (derived for ``l`` a multiple of ``d``)::

        SFR = (d - 1)(6 k d - d + 2 - 3 l) / (3 (2 k d - l + 1))
    """
    if k < 1 or d < 1:
        raise ValueError(f"k and d must be >= 1, got k={k} d={d}")
    l = max_duration
    if l < 1 or l > k * d:
        raise ValueError(
            f"max duration must be in [1, k*d]={k * d}, got {l}"
        )
    if l <= d:
        numerator = 2 * (l * l - 3 * d * l + 3 * k * d * d - 3 * k * d + 3 * d - 1)
    else:
        numerator = (d - 1) * (6 * k * d - d + 2 - 3 * l)
    return numerator / (3 * (2 * k * d - l + 1))


def theoretical_afr_bound(k: int) -> float:
    """Theorem 1: the AFR of OIP is strictly below ``1/k``."""
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    return 1.0 / k
