"""Asymptotic complexity of the OIPJOIN (paper Section 6.3, Table 1).

The OIPJOIN cost decomposes into ``O(|p_r| * APA)`` partition fetches,
``O(n_s * n_r * AFR)`` false hits and ``O(n_z)`` result retrieval.  With
the asymptotic ``k = O((n_s n_r / (|p_r| tau))^{1/3})`` this yields

* **upper bound** (``tau = 1``, no tightening):  ``k = O((n_r n_s)^{1/5})``
  and total cost ``O(n_r^{4/5} n_s^{4/5} + n_z)``;
* **lower bound** (``tau = O(1/k)``, maximal tightening):
  ``k = O((n_r n_s)^{1/3})`` and total cost ``O(n_r^{2/3} n_s^{2/3} + n_z)``.

Table 1 illustrates the bounds by doubling both inputs: the runtime grows
by ``2^{2/3} * 2^{2/3} ~ 2.52`` at the lower and ``2^{4/5} * 2^{4/5} ~
3.03`` at the upper bound, versus 2.06 (near-linear) and 4.00 (quadratic)
for the sort-merge join.  :func:`growth_factor` computes these predictions
so the Table 1 bench can print paper prediction next to measurement.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "ComplexityBound",
    "OIP_LOWER",
    "OIP_UPPER",
    "SMJ_LOWER",
    "SMJ_UPPER",
    "growth_factor",
    "asymptotic_k",
]


@dataclass(frozen=True)
class ComplexityBound:
    """A polynomial complexity ``O(n_r^a * n_s^a)`` for an algorithm/bound
    combination (``a`` is ``exponent``); ``label`` matches Table 1's rows."""

    label: str
    exponent: float

    def cost(self, outer_cardinality: int, inner_cardinality: int) -> float:
        """The dominating term (without the ``O(n_z)`` output part)."""
        return (outer_cardinality**self.exponent) * (
            inner_cardinality**self.exponent
        )


#: OIPJOIN lower bound: maximal tightening, tau = O(1/k).
OIP_LOWER = ComplexityBound(label="OIPJOIN LB (tau ~ 1/k)", exponent=2.0 / 3.0)
#: OIPJOIN upper bound: no tightening, tau = 1.
OIP_UPPER = ComplexityBound(label="OIPJOIN UB (tau = 1)", exponent=4.0 / 5.0)
#: Sort-merge join lower bound: near-linear scan behaviour.
SMJ_LOWER = ComplexityBound(label="SMJ LB", exponent=0.5)
#: Sort-merge join upper bound: every pair compared.
SMJ_UPPER = ComplexityBound(label="SMJ UB", exponent=1.0)


def growth_factor(bound: ComplexityBound, scale: float = 2.0) -> float:
    """Predicted runtime multiplier when *both* inputs grow by *scale*.

    With cost ``(n_r n_s)^a``, scaling both inputs by ``c`` multiplies the
    cost by ``c^{2a}``; Table 1's doubling gives 2.52 (OIP LB), 3.03
    (OIP UB), 2.0 (SMJ LB, before its logarithmic sort factor) and 4.0
    (SMJ UB).
    """
    if scale <= 0:
        raise ValueError(f"scale must be positive, got {scale}")
    return scale ** (2.0 * bound.exponent)


def asymptotic_k(
    outer_cardinality: int,
    inner_cardinality: int,
    tight: bool,
) -> float:
    """Section 6.3 asymptotic granule count.

    ``tight=True`` is the maximal-tightening regime,
    ``k = (n_r n_s)^{1/3}``; ``tight=False`` the no-tightening regime,
    ``k = (n_r n_s)^{1/5}``.
    """
    if outer_cardinality < 0 or inner_cardinality < 0:
        raise ValueError("cardinalities must be non-negative")
    product = outer_cardinality * inner_cardinality
    exponent = 1.0 / 3.0 if tight else 1.0 / 5.0
    return product**exponent
