"""Duration-complete relations (paper Section 5.1, before Theorem 1).

A duration-complete relation ``r^l_U`` contains *exactly one* tuple for
every interval of duration at most ``l`` inside the time range ``U``:

* every interval ``T subseteq U`` with ``|T| <= l`` appears,
* no tuple is longer than ``l``, and
* no interval appears twice.

The paper uses these relations to analyse the average false hit ratio over
tuples of *all* possible positions and durations; the tests use them to
check Theorem 1's closed forms exactly.
"""

from __future__ import annotations

from ..core.interval import Interval
from ..core.relation import TemporalRelation, TemporalTuple

__all__ = ["duration_complete_relation", "duration_complete_cardinality"]


def duration_complete_cardinality(time_range: Interval, max_duration: int) -> int:
    """``|r^l_U| = |U| * l - (l^2 - l) / 2`` (used in the Theorem 1 proof).

    There are ``|U| - m + 1`` intervals of duration ``m`` inside ``U``;
    summing over ``m = 1..l`` gives the closed form.
    """
    u = time_range.duration
    l = max_duration
    if l < 1:
        raise ValueError(f"max duration must be >= 1, got {l}")
    if l > u:
        raise ValueError(
            f"max duration {l} exceeds the time range duration {u}"
        )
    return u * l - (l * l - l) // 2


def duration_complete_relation(
    time_range: Interval,
    max_duration: int,
    name: str = "duration-complete",
) -> TemporalRelation:
    """Materialise ``r^l_U``: one tuple per interval of duration ``<= l``
    in *time_range*; payloads are consecutive integers.

    Example: ``r^2_[0,3]`` has the seven tuples ``[0,0], [1,1], [2,2],
    [3,3], [0,1], [1,2], [2,3]``.
    """
    u = time_range.duration
    if max_duration < 1:
        raise ValueError(f"max duration must be >= 1, got {max_duration}")
    if max_duration > u:
        raise ValueError(
            f"max duration {max_duration} exceeds the time range duration {u}"
        )
    tuples = []
    payload = 0
    for duration in range(1, max_duration + 1):
        for start in range(time_range.start, time_range.end - duration + 2):
            tuples.append(TemporalTuple(start, start + duration - 1, payload))
            payload += 1
    return TemporalRelation(tuples, name=name)
