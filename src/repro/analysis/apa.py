"""Average number of partition accesses (paper Section 5.2).

``APA`` quantifies how many partitions exist that are *relevant* (Lemma 1)
for a query interval.  This module provides

* the exact per-query count ``#acc(s, e)`` from the Lemma 5 proof, both as
  the closed form and as a brute-force enumeration (the tests check they
  agree),
* the Lemma 5 average ``(k^2 + k + 1) / 3`` over uniformly distributed
  query start/end granules, and
* the Theorem 2 bound ``min(tau * (k^2 + k + 1)/3, n)`` with the
  tightening factor ``tau`` of lazy partitioning.
"""

from __future__ import annotations

from ..core.lazy_list import LazyPartitionList
from ..core.oip import possible_partition_count

__all__ = [
    "access_count",
    "access_count_enumerated",
    "average_partition_accesses",
    "average_partition_accesses_enumerated",
    "apa_bound",
    "measured_tightening_factor",
]


def _validate_indices(k: int, s: int, e: int) -> None:
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if not 0 <= s <= e < k:
        raise ValueError(
            f"query granule indices must satisfy 0 <= s <= e < k, "
            f"got s={s} e={e} k={k}"
        )


def access_count(k: int, s: int, e: int) -> int:
    """``#acc(s, e)`` closed form (Lemma 5 proof):

    ``k + k*e - (s^2 + s)/2 - (e^2 + e)/2``

    — the number of partitions relevant for a query starting in granule
    ``s`` and ending in granule ``e``, assuming all partitions are used.
    """
    _validate_indices(k, s, e)
    return k + k * e - (s * s + s) // 2 - (e * e + e) // 2


def access_count_enumerated(k: int, s: int, e: int) -> int:
    """Brute-force count of partitions ``p_{i,j}`` with ``i <= e`` and
    ``j >= s`` — the oracle the closed form is tested against."""
    _validate_indices(k, s, e)
    return sum(
        1
        for i in range(k)
        for j in range(i, k)
        if i <= e and j >= s
    )


def average_partition_accesses(k: int) -> float:
    """Lemma 5: ``APA <= (k^2 + k + 1) / 3`` for uniformly distributed
    query start and end granules, all partitions used."""
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    return (k * k + k + 1) / 3.0


def average_partition_accesses_enumerated(k: int) -> float:
    """The Lemma 5 average computed by summing ``#acc(s, e)`` over all
    ``s <= e < k`` and dividing by the number of (s, e) pairs."""
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    total = 0
    count = 0
    for e in range(k):
        for s in range(e + 1):
            total += access_count(k, s, e)
            count += 1
    return total / count


def apa_bound(k: int, tau: float, cardinality: int) -> float:
    """Theorem 2: ``APA <= min(tau * (k^2 + k + 1)/3, n)``."""
    if not 0.0 < tau <= 1.0:
        raise ValueError(f"tau must be in (0, 1], got {tau}")
    if cardinality < 0:
        raise ValueError(f"cardinality must be >= 0, got {cardinality}")
    return min(tau * average_partition_accesses(k), float(cardinality))


def measured_tightening_factor(partition_list: LazyPartitionList) -> float:
    """The *actual* tightening factor of a built lazy partition list:
    materialised partitions over possible partitions."""
    possible = possible_partition_count(partition_list.config.k)
    if possible == 0:
        return 1.0
    return partition_list.partition_count / possible
