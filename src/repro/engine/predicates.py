"""Temporal predicates over intervals and tuples.

The overlap join computes ``r.T cap s.T``; downstream predicates — the
paper's motivating example filters employee-project pairs by "overlap of
at least 5 months" *after* the overlapping interval has been computed —
are expressed with the helpers here.  Allen's thirteen interval relations
are included because a temporal query surface without them would not be
adoptable, and they are all cheap refinements over an overlap-join
result.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..core.interval import Interval
from ..core.relation import TemporalTuple

__all__ = [
    "overlaps",
    "overlap_interval",
    "overlap_duration",
    "overlaps_at_least",
    "before",
    "after",
    "meets",
    "met_by",
    "starts",
    "started_by",
    "finishes",
    "finished_by",
    "during",
    "contains",
    "equals",
    "allen_relation",
]

PairPredicate = Callable[[TemporalTuple, TemporalTuple], bool]


def overlaps(left: TemporalTuple, right: TemporalTuple) -> bool:
    """The join predicate: the valid times intersect."""
    return left.start <= right.end and right.start <= left.end


def overlap_interval(
    left: TemporalTuple, right: TemporalTuple
) -> Optional[Interval]:
    """The overlapping interval ``r.T cap s.T``, or ``None``."""
    if not overlaps(left, right):
        return None
    return Interval(max(left.start, right.start), min(left.end, right.end))


def overlap_duration(left: TemporalTuple, right: TemporalTuple) -> int:
    """Number of shared time points (0 when disjoint)."""
    shared = min(left.end, right.end) - max(left.start, right.start) + 1
    return max(0, shared)


def overlaps_at_least(minimum: int) -> PairPredicate:
    """Predicate factory: overlap of at least *minimum* time points —
    the paper's "employed during at least 5 months of a project"."""
    if minimum < 1:
        raise ValueError(f"minimum overlap must be >= 1, got {minimum}")

    def predicate(left: TemporalTuple, right: TemporalTuple) -> bool:
        return overlap_duration(left, right) >= minimum

    return predicate


# -- Allen's interval relations -------------------------------------------------


def before(left: TemporalTuple, right: TemporalTuple) -> bool:
    """Allen *before*: left ends strictly before right starts (gap)."""
    return left.end + 1 < right.start


def after(left: TemporalTuple, right: TemporalTuple) -> bool:
    """Allen *after*: inverse of :func:`before`."""
    return before(right, left)


def meets(left: TemporalTuple, right: TemporalTuple) -> bool:
    """Allen *meets*: adjacent, no gap, no shared point."""
    return left.end + 1 == right.start


def met_by(left: TemporalTuple, right: TemporalTuple) -> bool:
    """Allen *met-by*: inverse of :func:`meets`."""
    return meets(right, left)


def starts(left: TemporalTuple, right: TemporalTuple) -> bool:
    """Allen *starts*: same start, left ends earlier."""
    return left.start == right.start and left.end < right.end


def started_by(left: TemporalTuple, right: TemporalTuple) -> bool:
    """Allen *started-by*: inverse of :func:`starts`."""
    return starts(right, left)


def finishes(left: TemporalTuple, right: TemporalTuple) -> bool:
    """Allen *finishes*: same end, left starts later."""
    return left.end == right.end and left.start > right.start


def finished_by(left: TemporalTuple, right: TemporalTuple) -> bool:
    """Allen *finished-by*: inverse of :func:`finishes`."""
    return finishes(right, left)


def during(left: TemporalTuple, right: TemporalTuple) -> bool:
    """Allen *during*: left strictly inside right."""
    return left.start > right.start and left.end < right.end


def contains(left: TemporalTuple, right: TemporalTuple) -> bool:
    """Allen *contains*: inverse of :func:`during`."""
    return during(right, left)


def equals(left: TemporalTuple, right: TemporalTuple) -> bool:
    """Allen *equals*: identical intervals."""
    return left.start == right.start and left.end == right.end


def allen_relation(left: TemporalTuple, right: TemporalTuple) -> str:
    """Name of the Allen relation holding between the two intervals.

    Exactly one of the thirteen relations holds for any pair; the two
    partial-overlap cases are reported as ``"overlaps"`` and
    ``"overlapped_by"``.
    """
    if before(left, right):
        return "before"
    if after(left, right):
        return "after"
    if meets(left, right):
        return "meets"
    if met_by(left, right):
        return "met_by"
    if equals(left, right):
        return "equals"
    if starts(left, right):
        return "starts"
    if started_by(left, right):
        return "started_by"
    if finishes(left, right):
        return "finishes"
    if finished_by(left, right):
        return "finished_by"
    if during(left, right):
        return "during"
    if contains(left, right):
        return "contains"
    if left.start < right.start:
        return "overlaps"
    return "overlapped_by"
