"""Query surface: temporal predicates, composable operators and a
statistics-driven join planner (the "viable option for the optimizer"
the paper's introduction motivates)."""

from .operators import (
    JoinedRow,
    OverlapJoinOperator,
    ScanOperator,
    SelectOperator,
    TimeSliceOperator,
)
from .parallel import (
    ExecutionReport,
    ProbeSchedule,
    ProbeTask,
    WorkerFaultPlan,
    build_probe_schedule,
    execute_schedule,
)
from .planner import JoinPlan, JoinPlanner
from .predicates import (
    after,
    allen_relation,
    before,
    contains,
    during,
    equals,
    finished_by,
    finishes,
    meets,
    met_by,
    overlap_duration,
    overlap_interval,
    overlaps,
    overlaps_at_least,
    started_by,
    starts,
)

__all__ = [
    "ScanOperator",
    "SelectOperator",
    "TimeSliceOperator",
    "OverlapJoinOperator",
    "JoinedRow",
    "JoinPlan",
    "JoinPlanner",
    "ExecutionReport",
    "ProbeSchedule",
    "ProbeTask",
    "WorkerFaultPlan",
    "build_probe_schedule",
    "execute_schedule",
    "overlaps",
    "overlap_interval",
    "overlap_duration",
    "overlaps_at_least",
    "before",
    "after",
    "meets",
    "met_by",
    "starts",
    "started_by",
    "finishes",
    "finished_by",
    "during",
    "contains",
    "equals",
    "allen_relation",
]
