"""Query-lifecycle governor: budgets, cooperative cancellation,
checkpoint/resume and admission control.

The paper's algorithms answer *how* to compute an overlap join cheaply;
this module answers *how long it may run, how to stop it, and when to
refuse it* — the lifecycle concerns a join service needs before it can
face real traffic:

* :class:`QueryBudget` — a wall-clock deadline plus logical budgets
  (CPU comparisons, block reads, or Section-6.2 modelled-cost units).
  Budgets are enforced **cooperatively** at outer-partition boundaries
  of the sequential OIPJOIN loop and at chunk boundaries of both
  parallel backends; a violated budget raises a structured
  :class:`BudgetExceededError` carrying the partial
  :class:`~repro.storage.metrics.CostCounters` and
  :class:`~repro.storage.metrics.ResilienceCounters` of the run.
* :class:`CancellationToken` — a thread-safe stop signal an external
  caller (a CLI signal handler, a test) flips mid-flight.  The OIPJOIN
  notices it at the same boundaries and hands back a **well-formed
  partial** :class:`~repro.core.base.JoinResult` with
  ``completed=False``; every other algorithm polls the token on each
  block read through the storage manager and returns the pairs collected
  so far.
* :class:`QueryCheckpoint` / :class:`CheckpointWriter` — because the
  OIPJOIN outer loop is deterministic given ``(k, relation order)``,
  progress serialises as ``(outer partitions completed, counters,
  resilience, matched pair indices)`` — a small JSON file.
  ``OIPJoin(resume_from=...)`` skips completed partitions and produces
  final pairs and counters **bit-identical** to an uninterrupted run
  (the differential guarantee of ``tests/chaos/test_lifecycle.py``).
  Checkpoint state is *sequential-equivalent* regardless of the backend
  that wrote it, so a checkpoint taken by a process-pool run resumes
  cleanly on the sequential path and vice versa.
* :class:`AdmissionController` — a bounded concurrent-query slot pool
  with a queue-depth limit that rejects excess queries with
  :class:`AdmissionRejectedError` instead of degrading everyone, and
  :class:`CircuitBreaker` — the reusable degradation policy that trips
  the parallel backend down to the sequential path after repeated
  chunk-retry exhaustion (generalising the PR-2 ``BrokenExecutor``
  fallback).

Nothing here imports :mod:`repro.engine.parallel` or
:mod:`repro.core.join`; the join layers import *this* module lazily, so
the governor stays cycle-free and usable from the storage layer via
duck typing (the storage manager only calls
:meth:`CancellationToken.raise_if_cancelled`).
"""

from __future__ import annotations

import json
import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple
import zlib

from ..storage.metrics import CostCounters, CostWeights, ResilienceCounters

__all__ = [
    "QueryBudget",
    "BudgetExceededError",
    "QueryCancelledError",
    "AdmissionRejectedError",
    "CheckpointMismatchError",
    "CancellationToken",
    "QueryCheckpoint",
    "CheckpointWriter",
    "GovernedRun",
    "AdmissionController",
    "AdmissionStats",
    "CircuitBreaker",
    "relation_digest",
    "make_fingerprint",
    "counters_from_snapshot",
    "resilience_from_snapshot",
    "CHECKPOINT_VERSION",
]

#: On-disk checkpoint format version.
CHECKPOINT_VERSION = 1

#: The named (non-``extras``) integer fields of :class:`CostCounters`.
_COUNTER_FIELDS = (
    "cpu_comparisons",
    "block_reads",
    "block_writes",
    "sequential_reads",
    "random_reads",
    "buffer_hits",
    "false_hits",
    "partition_accesses",
    "result_tuples",
)


# ----------------------------------------------------------------------
# Structured lifecycle errors.
# ----------------------------------------------------------------------


class BudgetExceededError(RuntimeError):
    """A cooperative budget check failed at a partition/chunk boundary.

    Carries the partial progress of the run so callers can report (or
    persist) exactly what was computed before the budget ran out:
    ``counters`` / ``resilience`` are *copies* of the boundary state,
    ``partitions_completed`` the number of outer partitions fully
    processed, and ``checkpoint_path`` the checkpoint written at the
    stop boundary when checkpointing was configured (else ``None``).
    """

    def __init__(
        self,
        reason: str,
        partitions_completed: int = 0,
        counters: Optional[CostCounters] = None,
        resilience: Optional[ResilienceCounters] = None,
        elapsed_ms: float = 0.0,
        checkpoint_path: Optional[str] = None,
    ) -> None:
        super().__init__(
            f"query budget exceeded ({reason}) after "
            f"{partitions_completed} outer partition(s), "
            f"{elapsed_ms:.1f} ms elapsed"
        )
        self.reason = reason
        self.partitions_completed = partitions_completed
        self.counters = counters if counters is not None else CostCounters()
        self.resilience = (
            resilience if resilience is not None else ResilienceCounters()
        )
        self.elapsed_ms = elapsed_ms
        self.checkpoint_path = checkpoint_path


class QueryCancelledError(RuntimeError):
    """Raised from a cooperative cancellation point inside an algorithm
    that cannot unwind gracefully on its own (storage-level polling).
    :meth:`repro.core.base.OverlapJoinAlgorithm.join` catches this and
    converts it into a partial result with ``completed=False`` — user
    code normally never sees the exception."""

    def __init__(self, checks: int = 0) -> None:
        super().__init__(
            f"query cancelled cooperatively after {checks} check(s)"
        )
        self.checks = checks


class AdmissionRejectedError(RuntimeError):
    """The admission controller refused a query: every slot is busy and
    the wait queue is full (or the queue wait timed out)."""

    def __init__(
        self,
        active: int,
        queued: int,
        max_active: int,
        max_queued: int,
        timed_out: bool = False,
    ) -> None:
        detail = "queue wait timed out" if timed_out else "queue full"
        super().__init__(
            f"admission rejected: {active}/{max_active} slots busy, "
            f"{queued}/{max_queued} queued ({detail})"
        )
        self.active = active
        self.queued = queued
        self.max_active = max_active
        self.max_queued = max_queued
        self.timed_out = timed_out


class CheckpointMismatchError(ValueError):
    """A checkpoint does not belong to this query (different relations,
    granule count or algorithm) — resuming would corrupt the result."""


# ----------------------------------------------------------------------
# Budgets.
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class QueryBudget:
    """How much a single join is allowed to cost.

    All limits are optional and combine with AND-semantics (the first
    violated limit stops the query):

    * ``deadline_ms`` — wall-clock milliseconds from query start,
    * ``max_comparisons`` — CPU comparisons
      (:attr:`CostCounters.cpu_comparisons`),
    * ``max_block_reads`` — device block reads,
    * ``max_cost`` — Section 6.2 modelled-cost units
      (``#cpu * c_cpu + #io * c_io``), priced with ``weights`` (falling
      back to the executing device's weights).

    A limit of ``0`` is legal and means *already exhausted*: the join
    fails fast at preflight with no partition work performed.
    """

    deadline_ms: Optional[float] = None
    max_comparisons: Optional[int] = None
    max_block_reads: Optional[int] = None
    max_cost: Optional[float] = None
    weights: Optional[CostWeights] = None

    def __post_init__(self) -> None:
        for name in ("deadline_ms", "max_comparisons", "max_block_reads", "max_cost"):
            value = getattr(self, name)
            if value is not None and value < 0:
                raise ValueError(f"{name} must be >= 0, got {value}")

    @property
    def bounded(self) -> bool:
        """True when at least one limit is set."""
        return any(
            getattr(self, name) is not None
            for name in (
                "deadline_ms",
                "max_comparisons",
                "max_block_reads",
                "max_cost",
            )
        )

    # -- construction helpers -------------------------------------------

    @classmethod
    def from_cost_units(
        cls,
        units: float,
        weights: Optional[CostWeights] = None,
        deadline_ms: Optional[float] = None,
    ) -> "QueryBudget":
        """A budget expressed directly in modelled-cost units."""
        return cls(max_cost=units, weights=weights, deadline_ms=deadline_ms)

    @classmethod
    def from_cost_model(
        cls,
        model: Any,
        k: int,
        headroom: float = 4.0,
        deadline_ms: Optional[float] = None,
    ) -> "QueryBudget":
        """A budget of ``headroom`` times the Section 6.2 predicted
        overhead cost at granule count *k*.

        *model* is a :class:`~repro.core.granules.JoinCostModel` (duck
        typed to avoid an import cycle); the model's own weights price
        the budget, so "4x the estimated cost" means the same thing the
        planner's estimate does.
        """
        if headroom <= 0:
            raise ValueError(f"headroom must be positive, got {headroom}")
        return cls.from_cost_units(
            model.overhead_cost(k) * headroom,
            weights=model.weights,
            deadline_ms=deadline_ms,
        )

    # -- enforcement ----------------------------------------------------

    def preflight_violation(self) -> Optional[str]:
        """The reason this budget is exhausted before any work, if so."""
        if self.deadline_ms is not None and self.deadline_ms <= 0:
            return "deadline"
        if self.max_comparisons == 0:
            return "comparisons"
        if self.max_block_reads == 0:
            return "block-reads"
        if self.max_cost == 0:
            return "cost"
        return None

    def violation(
        self,
        counters: CostCounters,
        elapsed_ms: float,
        weights: Optional[CostWeights] = None,
    ) -> Optional[str]:
        """The first violated limit given the run's state, or ``None``."""
        if self.deadline_ms is not None and elapsed_ms >= self.deadline_ms:
            return "deadline"
        if (
            self.max_comparisons is not None
            and counters.cpu_comparisons > self.max_comparisons
        ):
            return "comparisons"
        if (
            self.max_block_reads is not None
            and counters.block_reads > self.max_block_reads
        ):
            return "block-reads"
        if self.max_cost is not None:
            pricing = self.weights or weights or CostWeights.main_memory()
            if counters.modelled_cost(pricing) > self.max_cost:
                return "cost"
        return None


# ----------------------------------------------------------------------
# Cancellation.
# ----------------------------------------------------------------------


class CancellationToken:
    """A thread-safe cooperative stop signal.

    ``cancel()`` may be called from any thread (typically a signal
    handler); the executing join polls the token at its boundaries via
    :meth:`poll` and unwinds gracefully.  ``cancel_after_checks=n``
    makes the token self-cancel on its ``n``-th poll — the deterministic
    hook the cancel/resume differential tests use to cancel at an exact
    partition/chunk/block boundary without wall-clock races.
    """

    def __init__(self, cancel_after_checks: Optional[int] = None) -> None:
        if cancel_after_checks is not None and cancel_after_checks < 0:
            raise ValueError(
                f"cancel_after_checks must be >= 0, got {cancel_after_checks}"
            )
        self._event = threading.Event()
        self._lock = threading.Lock()
        self._checks = 0
        self._cancel_after = cancel_after_checks

    def cancel(self) -> None:
        """Request cancellation (idempotent, thread-safe)."""
        self._event.set()

    @property
    def cancelled(self) -> bool:
        """True once cancellation was requested (does not count a check)."""
        return self._event.is_set()

    @property
    def checks(self) -> int:
        """Cooperative checks performed so far."""
        return self._checks

    def poll(self) -> bool:
        """Record one cooperative check; True when the query must stop."""
        with self._lock:
            self._checks += 1
            if (
                self._cancel_after is not None
                and self._checks > self._cancel_after
            ):
                self._event.set()
        return self._event.is_set()

    def raise_if_cancelled(self) -> None:
        """Poll and raise :class:`QueryCancelledError` when cancelled —
        the storage-level cancellation point used by algorithms without
        a partition-boundary loop of their own."""
        if self.poll():
            raise QueryCancelledError(checks=self._checks)

    def __repr__(self) -> str:
        state = "cancelled" if self.cancelled else "armed"
        return f"CancellationToken({state}, checks={self._checks})"


# ----------------------------------------------------------------------
# Snapshot plumbing.
# ----------------------------------------------------------------------


def _extra_key(key: str) -> str:
    """Snapshot key → ``extras`` key: :meth:`CostCounters.snapshot`
    namespaces extras as ``extra.<key>``; strip that prefix on restore so
    a snapshot → rebuild round trip is exact."""
    return key[6:] if key.startswith("extra.") else key


def counters_from_snapshot(snapshot: Dict[str, int]) -> CostCounters:
    """Rebuild a :class:`CostCounters` from a :meth:`CostCounters
    .snapshot` dict (unknown keys become ``extras``)."""
    counters = CostCounters()
    for key, value in snapshot.items():
        if key in _COUNTER_FIELDS:
            setattr(counters, key, int(value))
        else:
            counters.extras[_extra_key(key)] = int(value)
    return counters


def resilience_from_snapshot(snapshot: Dict[str, int]) -> ResilienceCounters:
    """Rebuild a :class:`ResilienceCounters` from its snapshot dict."""
    resilience = ResilienceCounters()
    for key, value in snapshot.items():
        if hasattr(resilience, key):
            setattr(resilience, key, int(value))
    return resilience


def _overwrite_counters(target: CostCounters, snapshot: Dict[str, int]) -> None:
    """Reset *target* to exactly the snapshot's state, in place."""
    target.reset()
    for key, value in snapshot.items():
        if key in _COUNTER_FIELDS:
            setattr(target, key, int(value))
        else:
            target.extras[_extra_key(key)] = int(value)


def _overwrite_resilience(
    target: ResilienceCounters, snapshot: Dict[str, int]
) -> None:
    target.reset()
    for key, value in snapshot.items():
        if hasattr(target, key):
            setattr(target, key, int(value))


# ----------------------------------------------------------------------
# Checkpoint / resume.
# ----------------------------------------------------------------------


def relation_digest(relation: Any) -> int:
    """A cheap order-sensitive digest of a relation's intervals.

    CRC32 over the endpoint stream — enough to catch "resumed against
    the wrong (or reordered) relation", which is the failure mode that
    would silently corrupt a resumed join.  Payloads are deliberately
    excluded: they are opaque and may not have a stable byte form.
    """
    crc = 0
    for tup in relation:
        crc = zlib.crc32(f"{tup.start},{tup.end};".encode("ascii"), crc)
    return crc


def make_fingerprint(
    algorithm: str,
    k_outer: int,
    k_inner: int,
    outer: Any,
    inner: Any,
) -> Dict[str, Any]:
    """Identity of one deterministic join execution: everything that must
    match for ``(outer partitions completed)`` to mean the same thing."""
    return {
        "algorithm": algorithm,
        "k_outer": int(k_outer),
        "k_inner": int(k_inner),
        "outer_cardinality": len(outer),
        "inner_cardinality": len(inner),
        "outer_digest": relation_digest(outer),
        "inner_digest": relation_digest(inner),
    }


@dataclass
class QueryCheckpoint:
    """Serialized progress of one OIPJOIN at an outer-partition boundary.

    ``counters`` / ``resilience`` are *sequential-equivalent* snapshots:
    the exact state the sequential Algorithm-2 loop would hold after
    ``partitions_completed`` outer partitions — parallel runs convert
    their (enumeration-up-front) accounting before writing, which is
    what makes checkpoints portable across backends.  ``pairs`` holds
    ``(outer_index, inner_index)`` positions into the two relations in
    emission order, so a resume rebuilds the exact pair list without
    re-reading a single block.
    """

    fingerprint: Dict[str, Any]
    partitions_completed: int
    partition_count: int
    counters: Dict[str, int]
    resilience: Dict[str, int]
    pairs: List[Tuple[int, int]]
    version: int = CHECKPOINT_VERSION

    # -- persistence ----------------------------------------------------

    def write(self, path: str) -> str:
        """Atomically write the checkpoint as JSON; returns *path*."""
        payload = {
            "version": self.version,
            "fingerprint": self.fingerprint,
            "partitions_completed": self.partitions_completed,
            "partition_count": self.partition_count,
            "counters": self.counters,
            "resilience": self.resilience,
            "pairs": [list(pair) for pair in self.pairs],
        }
        tmp_path = f"{path}.tmp"
        with open(tmp_path, "w", encoding="ascii") as handle:
            json.dump(payload, handle, separators=(",", ":"))
        os.replace(tmp_path, path)
        return path

    @classmethod
    def load(cls, path: str) -> "QueryCheckpoint":
        with open(path, "r", encoding="ascii") as handle:
            payload = json.load(handle)
        version = payload.get("version")
        if version != CHECKPOINT_VERSION:
            raise CheckpointMismatchError(
                f"checkpoint version {version!r} is not supported "
                f"(expected {CHECKPOINT_VERSION})"
            )
        return cls(
            fingerprint=payload["fingerprint"],
            partitions_completed=int(payload["partitions_completed"]),
            partition_count=int(payload["partition_count"]),
            counters={k: int(v) for k, v in payload["counters"].items()},
            resilience={k: int(v) for k, v in payload["resilience"].items()},
            pairs=[(int(o), int(i)) for o, i in payload["pairs"]],
        )

    # -- resume ---------------------------------------------------------

    def validate(
        self, fingerprint: Dict[str, Any], partition_count: int
    ) -> None:
        """Refuse to resume against a different query."""
        if self.fingerprint != fingerprint:
            mismatched = sorted(
                key
                for key in set(self.fingerprint) | set(fingerprint)
                if self.fingerprint.get(key) != fingerprint.get(key)
            )
            raise CheckpointMismatchError(
                "checkpoint does not match this query "
                f"(differs in: {', '.join(mismatched)})"
            )
        if self.partition_count != partition_count:
            raise CheckpointMismatchError(
                f"checkpoint expects {self.partition_count} outer "
                f"partitions, query has {partition_count}"
            )
        if not 0 <= self.partitions_completed <= partition_count:
            raise CheckpointMismatchError(
                f"checkpoint progress {self.partitions_completed} is out "
                f"of range for {partition_count} partitions"
            )

    def restore_into(
        self, counters: CostCounters, resilience: ResilienceCounters
    ) -> None:
        """Overwrite live counters with the checkpointed state.

        The partitioning (OIPCREATE) phase re-runs deterministically on
        resume and re-charges the identical build IO; overwriting with
        the checkpoint snapshot — which already contains those charges —
        keeps the final totals bit-identical to an uninterrupted run.
        """
        _overwrite_counters(counters, self.counters)
        _overwrite_resilience(resilience, self.resilience)

    def rebuild_pairs(self, outer: Any, inner: Any) -> List[Tuple[Any, Any]]:
        """Materialise the checkpointed pairs from the live relations."""
        outer_tuples = outer.tuples
        inner_tuples = inner.tuples
        return [
            (outer_tuples[o], inner_tuples[i]) for o, i in self.pairs
        ]


class CheckpointWriter:
    """Writes boundary checkpoints for one run, every *every* partitions
    (and unconditionally at a cancellation/budget stop).

    Pair encoding maps each emitted tuple back to its position in its
    relation by value ``(start, end, payload)`` — duplicate tuples all
    map to the first equal position, which reproduces a value-identical
    pair list on resume.  Payloads must be hashable to checkpoint (the
    library's workloads use ints and strings).
    """

    def __init__(
        self,
        path: str,
        every: int,
        fingerprint: Dict[str, Any],
        partition_count: int,
        outer: Any,
        inner: Any,
    ) -> None:
        if every < 1:
            raise ValueError(f"checkpoint interval must be >= 1, got {every}")
        self.path = str(path)
        self.every = every
        self.fingerprint = fingerprint
        self.partition_count = partition_count
        self._outer = outer
        self._inner = inner
        self._outer_index: Optional[Dict[Any, int]] = None
        self._inner_index: Optional[Dict[Any, int]] = None
        self._last_written: Optional[int] = None
        #: How many checkpoints this run wrote (observability/tests).
        self.writes = 0

    @staticmethod
    def _index_of(relation: Any) -> Dict[Any, int]:
        index: Dict[Any, int] = {}
        for position, tup in enumerate(relation):
            key = (tup.start, tup.end, tup.payload)
            if key not in index:
                index[key] = position
        return index

    def _encode_pairs(
        self, pairs: Sequence[Tuple[Any, Any]]
    ) -> List[Tuple[int, int]]:
        if self._outer_index is None:
            try:
                self._outer_index = self._index_of(self._outer)
                self._inner_index = self._index_of(self._inner)
            except TypeError as error:
                raise TypeError(
                    "checkpointing requires hashable tuple payloads"
                ) from error
        outer_index, inner_index = self._outer_index, self._inner_index
        return [
            (
                outer_index[(o.start, o.end, o.payload)],
                inner_index[(i.start, i.end, i.payload)],
            )
            for o, i in pairs
        ]

    def maybe_write(
        self,
        partitions_completed: int,
        counters: CostCounters,
        resilience: ResilienceCounters,
        pairs: Sequence[Tuple[Any, Any]],
        force: bool = False,
    ) -> Optional[str]:
        """Write a checkpoint when the cadence (or *force*) says so;
        returns the path when one was written."""
        due = (
            partitions_completed > 0
            and partitions_completed % self.every == 0
        )
        if not force and not due:
            return None
        if self._last_written == partitions_completed and not force:
            return None
        checkpoint = QueryCheckpoint(
            fingerprint=self.fingerprint,
            partitions_completed=partitions_completed,
            partition_count=self.partition_count,
            counters=counters.snapshot(),
            resilience=resilience.snapshot(),
            pairs=self._encode_pairs(pairs),
        )
        checkpoint.write(self.path)
        self._last_written = partitions_completed
        self.writes += 1
        return self.path


# ----------------------------------------------------------------------
# The per-run governor.
# ----------------------------------------------------------------------


class GovernedRun:
    """Lifecycle state of one governed join execution.

    Owns the start time, the budget, the cancellation token and the
    checkpoint writer; the join loops call :meth:`boundary` at every
    cooperative stop point with *sequential-equivalent* counters (see
    :class:`QueryCheckpoint`).  ``boundary`` returns ``True`` when the
    run must stop because of cancellation, raises
    :class:`BudgetExceededError` on a violated budget (writing a final
    checkpoint first when configured), and otherwise handles the
    checkpoint cadence.
    """

    def __init__(
        self,
        budget: Optional[QueryBudget] = None,
        cancellation: Optional[CancellationToken] = None,
        weights: Optional[CostWeights] = None,
        clock: Callable[[], float] = time.monotonic,
        tracer: Optional[Any] = None,
    ) -> None:
        self.budget = budget
        self.cancellation = cancellation
        self.weights = weights
        self._clock = clock
        self._started = clock()
        self.writer: Optional[CheckpointWriter] = None
        #: Path of the most recent checkpoint written by this run.
        self.last_checkpoint: Optional[str] = None
        #: Phase tracer (duck typed); only consulted when a boundary
        #: actually stops the run or writes a checkpoint, so the healthy
        #: path costs nothing extra.
        self._trace = (
            tracer if tracer is not None and tracer.enabled else None
        )

    def attach_writer(self, writer: CheckpointWriter) -> None:
        self.writer = writer

    def elapsed_ms(self) -> float:
        return (self._clock() - self._started) * 1000.0

    # -- enforcement ----------------------------------------------------

    def preflight(self) -> None:
        """Fail fast when the budget is exhausted before any partition
        work (zero deadline or zero logical budget)."""
        if self.budget is None:
            return
        reason = self.budget.preflight_violation()
        if reason is not None:
            raise BudgetExceededError(
                f"{reason} (exhausted at launch)",
                partitions_completed=0,
                elapsed_ms=self.elapsed_ms(),
            )

    def checkpoint(
        self,
        partitions_completed: int,
        counters: CostCounters,
        resilience: ResilienceCounters,
        pairs: Sequence[Tuple[Any, Any]],
        force: bool = False,
    ) -> Optional[str]:
        if self.writer is None:
            return None
        path = self.writer.maybe_write(
            partitions_completed, counters, resilience, pairs, force=force
        )
        if path is not None:
            self.last_checkpoint = path
        return path

    def boundary(
        self,
        partitions_completed: int,
        counters: CostCounters,
        resilience: ResilienceCounters,
        pairs: Sequence[Tuple[Any, Any]],
    ) -> bool:
        """One cooperative stop point.  True means "stop: cancelled"."""
        if self.cancellation is not None and self.cancellation.poll():
            self.checkpoint(
                partitions_completed, counters, resilience, pairs, force=True
            )
            if self._trace is not None:
                self._trace.event(
                    "governor.cancelled",
                    partitions_completed=partitions_completed,
                )
            return True
        if self.budget is not None:
            reason = self.budget.violation(
                counters, self.elapsed_ms(), self.weights
            )
            if reason is not None:
                path = self.checkpoint(
                    partitions_completed,
                    counters,
                    resilience,
                    pairs,
                    force=True,
                )
                if self._trace is not None:
                    self._trace.event(
                        "governor.budget_exceeded",
                        reason=reason,
                        partitions_completed=partitions_completed,
                    )
                raise BudgetExceededError(
                    reason,
                    partitions_completed=partitions_completed,
                    counters=counters_from_snapshot(counters.snapshot()),
                    resilience=resilience_from_snapshot(
                        resilience.snapshot()
                    ),
                    elapsed_ms=self.elapsed_ms(),
                    checkpoint_path=path,
                )
        written = self.checkpoint(
            partitions_completed, counters, resilience, pairs
        )
        if written is not None and self._trace is not None:
            self._trace.event(
                "governor.checkpoint",
                partitions_completed=partitions_completed,
                path=written,
            )
        return False


# ----------------------------------------------------------------------
# Admission control.
# ----------------------------------------------------------------------


@dataclass
class AdmissionStats:
    """Observable admission counters (all monotone integers)."""

    submitted: int = 0
    admitted: int = 0
    rejected: int = 0
    timeouts: int = 0
    completed: int = 0
    peak_active: int = 0
    peak_queued: int = 0

    def snapshot(self) -> Dict[str, int]:
        return {
            "submitted": self.submitted,
            "admitted": self.admitted,
            "rejected": self.rejected,
            "timeouts": self.timeouts,
            "completed": self.completed,
            "peak_active": self.peak_active,
            "peak_queued": self.peak_queued,
        }


class AdmissionController:
    """A bounded concurrent-query slot pool with a wait queue.

    ``max_active`` queries run concurrently; up to ``max_queued`` more
    wait for a slot (optionally bounded by a *timeout*); anything beyond
    that is rejected immediately with :class:`AdmissionRejectedError` —
    shedding load instead of degrading every admitted query.  All
    admission outcomes are observable through :attr:`stats`.
    """

    def __init__(self, max_active: int = 4, max_queued: int = 0) -> None:
        if max_active < 1:
            raise ValueError(f"max_active must be >= 1, got {max_active}")
        if max_queued < 0:
            raise ValueError(f"max_queued must be >= 0, got {max_queued}")
        self.max_active = max_active
        self.max_queued = max_queued
        self.stats = AdmissionStats()
        self._active = 0
        self._queued = 0
        self._condition = threading.Condition()

    @property
    def active(self) -> int:
        return self._active

    @property
    def queued(self) -> int:
        return self._queued

    def _reject(self, timed_out: bool = False) -> AdmissionRejectedError:
        self.stats.rejected += 1
        if timed_out:
            self.stats.timeouts += 1
        return AdmissionRejectedError(
            active=self._active,
            queued=self._queued,
            max_active=self.max_active,
            max_queued=self.max_queued,
            timed_out=timed_out,
        )

    def _acquire(self, timeout: Optional[float]) -> None:
        with self._condition:
            self.stats.submitted += 1
            if self._active < self.max_active and self._queued == 0:
                self._active += 1
                self.stats.admitted += 1
                self.stats.peak_active = max(
                    self.stats.peak_active, self._active
                )
                return
            if self._queued >= self.max_queued:
                raise self._reject()
            self._queued += 1
            self.stats.peak_queued = max(self.stats.peak_queued, self._queued)
            deadline = (
                None if timeout is None else time.monotonic() + timeout
            )
            try:
                while self._active >= self.max_active:
                    remaining = (
                        None
                        if deadline is None
                        else deadline - time.monotonic()
                    )
                    if remaining is not None and remaining <= 0:
                        raise self._reject(timed_out=True)
                    if not self._condition.wait(timeout=remaining):
                        raise self._reject(timed_out=True)
            finally:
                self._queued -= 1
            self._active += 1
            self.stats.admitted += 1
            self.stats.peak_active = max(self.stats.peak_active, self._active)

    def _release(self) -> None:
        with self._condition:
            self._active -= 1
            self.stats.completed += 1
            self._condition.notify()

    @contextmanager
    def admit(self, timeout: Optional[float] = None):
        """Hold one query slot for the duration of the ``with`` block;
        raises :class:`AdmissionRejectedError` when none can be had."""
        self._acquire(timeout)
        try:
            yield self
        finally:
            self._release()

    def run(
        self,
        algorithm: Any,
        outer: Any,
        inner: Any,
        timeout: Optional[float] = None,
    ) -> Any:
        """Admit, execute ``algorithm.join(outer, inner)``, release."""
        with self.admit(timeout=timeout):
            return algorithm.join(outer, inner)

    def publish_metrics(self, registry: Any) -> None:
        """Publish admission outcomes (monotone counters) and the live
        slot occupancy (gauges) into a metrics registry."""
        registry.publish_dict("admission", self.stats.snapshot())
        registry.gauge("admission.active").set(self._active)
        registry.gauge("admission.queued").set(self._queued)

    def __repr__(self) -> str:
        return (
            f"AdmissionController(active={self._active}/{self.max_active}, "
            f"queued={self._queued}/{self.max_queued})"
        )


# ----------------------------------------------------------------------
# Circuit breaker.
# ----------------------------------------------------------------------


class CircuitBreaker:
    """A reusable degradation policy for the parallel backend.

    PR 2 taught the executor to survive a broken pool by finishing the
    *current* join on the in-process sequential path; the breaker makes
    that decision persistent across joins.  After ``failure_threshold``
    consecutive degraded parallel executions (chunk-retry exhaustion or
    worker-pool crashes), the breaker *opens* and the next ``cooldown``
    joins skip the pool entirely.  It then moves to *half-open* and
    allows one trial parallel execution: success closes the breaker,
    another failure re-opens it.  State transitions are counted in
    calls, not wall-clock time, so behaviour is deterministic and
    testable.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"

    def __init__(self, failure_threshold: int = 3, cooldown: int = 4) -> None:
        if failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if cooldown < 1:
            raise ValueError(f"cooldown must be >= 1, got {cooldown}")
        self.failure_threshold = failure_threshold
        self.cooldown = cooldown
        self._state = self.CLOSED
        self._failures = 0
        self._denials = 0
        self._lock = threading.Lock()
        #: Times the breaker tripped open (observability).
        self.trips = 0
        #: Parallel executions denied while open (observability).
        self.denied = 0

    @property
    def state(self) -> str:
        return self._state

    def allow_parallel(self) -> bool:
        """May the next join use the worker pool?  (Counts a denial and
        advances the cooldown when the breaker is open.)"""
        with self._lock:
            if self._state == self.CLOSED:
                return True
            if self._state == self.HALF_OPEN:
                return True
            self._denials += 1
            self.denied += 1
            if self._denials >= self.cooldown:
                self._state = self.HALF_OPEN
            return False

    def record_success(self) -> None:
        """A parallel execution completed without degradation."""
        with self._lock:
            self._failures = 0
            self._denials = 0
            self._state = self.CLOSED

    def record_failure(self) -> None:
        """A parallel execution degraded (downgraded chunks or a worker
        crash); trips the breaker past the threshold, and immediately
        from half-open."""
        with self._lock:
            self._failures += 1
            if (
                self._state == self.HALF_OPEN
                or self._failures >= self.failure_threshold
            ):
                self._state = self.OPEN
                self._denials = 0
                self._failures = 0
                self.trips += 1

    def snapshot(self) -> Dict[str, Any]:
        return {
            "state": self._state,
            "trips": self.trips,
            "denied": self.denied,
        }

    def publish_metrics(self, registry: Any) -> None:
        """Publish the breaker's trip/denial counters and its state as a
        gauge (0 = closed, 1 = half-open, 2 = open)."""
        registry.publish_dict(
            "breaker", {"trips": self.trips, "denied": self.denied}
        )
        state_value = {self.CLOSED: 0, self.HALF_OPEN: 1, self.OPEN: 2}
        registry.gauge("breaker.state").set(state_value[self._state])

    def __repr__(self) -> str:
        return (
            f"CircuitBreaker(state={self._state!r}, trips={self.trips}, "
            f"threshold={self.failure_threshold})"
        )
