"""A statistics-driven join planner.

The paper's summary (end of Section 7) is effectively an optimizer rule:

    "For datasets with only very short tuples (or point data), the
    sort-merge join is the most efficient approach, but it deteriorates
    as soon as the dataset contains a few long-lived tuples.  [In all
    other cases] the OIPJOIN is the most efficient and robust approach."

:class:`JoinPlanner` encodes that rule: it inspects the duration profile
of both inputs and picks the sort-merge join only when *both* relations
are (almost) point data; otherwise it picks the self-adjusting OIPJOIN.
The chosen algorithm and the reasoning are exposed on the returned
:class:`JoinPlan` so applications can log plan decisions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..core.base import JoinResult, OverlapJoinAlgorithm
from ..core.join import OIPJoin
from ..core.relation import TemporalRelation
from ..baselines.sort_merge import SortMergeJoin
from ..storage.buffer import BufferPool
from ..storage.device import DeviceProfile

__all__ = ["JoinPlan", "JoinPlanner"]


@dataclass
class JoinPlan:
    """A chosen join algorithm plus the statistics that justified it."""

    algorithm: OverlapJoinAlgorithm
    reason: str
    outer_duration_fraction: float
    inner_duration_fraction: float

    def execute(
        self, outer: TemporalRelation, inner: TemporalRelation
    ) -> JoinResult:
        return self.algorithm.join(outer, inner)


class JoinPlanner:
    """Pick an overlap-join algorithm from relation statistics.

    ``point_threshold`` is the duration fraction (``lambda``) below which
    a relation counts as "point data"; the paper's experiments show the
    sort-merge join losing its edge as soon as maximum durations reach a
    fraction of a percent of the time range, so the default is
    conservative.
    """

    def __init__(
        self,
        device: Optional[DeviceProfile] = None,
        buffer_pool: Optional[BufferPool] = None,
        point_threshold: float = 1e-5,
    ) -> None:
        if point_threshold <= 0:
            raise ValueError(
                f"point threshold must be positive, got {point_threshold}"
            )
        self.device = device
        self.buffer_pool = buffer_pool
        self.point_threshold = point_threshold

    def plan(
        self, outer: TemporalRelation, inner: TemporalRelation
    ) -> JoinPlan:
        """Choose the algorithm for ``outer JOIN inner``."""
        outer_lambda = (
            outer.duration_fraction if not outer.is_empty else 0.0
        )
        inner_lambda = (
            inner.duration_fraction if not inner.is_empty else 0.0
        )
        if (
            outer_lambda <= self.point_threshold
            and inner_lambda <= self.point_threshold
        ):
            algorithm: OverlapJoinAlgorithm = SortMergeJoin(
                device=self.device, buffer_pool=self.buffer_pool
            )
            reason = (
                "both inputs are (near-)point data "
                f"(lambda_r={outer_lambda:.2e}, lambda_s={inner_lambda:.2e} "
                f"<= {self.point_threshold:.0e}): sort-merge join wins on "
                "short tuples"
            )
        else:
            algorithm = OIPJoin(
                device=self.device, buffer_pool=self.buffer_pool
            )
            reason = (
                "long-lived tuples present "
                f"(lambda_r={outer_lambda:.2e}, lambda_s={inner_lambda:.2e}): "
                "OIPJOIN is robust to long-lived tuples"
            )
        return JoinPlan(
            algorithm=algorithm,
            reason=reason,
            outer_duration_fraction=outer_lambda,
            inner_duration_fraction=inner_lambda,
        )

    def join(
        self, outer: TemporalRelation, inner: TemporalRelation
    ) -> JoinResult:
        """Plan and execute in one call."""
        return self.plan(outer, inner).execute(outer, inner)
