"""A statistics-driven join planner.

The paper's summary (end of Section 7) is effectively an optimizer rule:

    "For datasets with only very short tuples (or point data), the
    sort-merge join is the most efficient approach, but it deteriorates
    as soon as the dataset contains a few long-lived tuples.  [In all
    other cases] the OIPJOIN is the most efficient and robust approach."

:class:`JoinPlanner` encodes that rule: it inspects the duration profile
of both inputs and picks the sort-merge join only when *both* relations
are (almost) point data; otherwise it picks the self-adjusting OIPJOIN.

On top of algorithm choice the planner decides the *degree of
parallelism* and the *join kernel*.  It estimates the number of
candidate comparisons the probe phase will perform — ``n_r * n_s``
scaled by the overlap coverage ``min(1, lambda_r + lambda_s)`` implied
by the duration statistics — and emits an OIPJOIN with ``parallelism``
set (the partition-pair scheduler of :mod:`repro.engine.parallel`) once
that estimate crosses ``parallel_threshold``.  Small joins stay
sequential: spinning up a worker pool costs more than it saves below
the threshold.  The same estimate picks the partition-pair kernel
(:mod:`repro.core.kernels`) in a three-way split: the ``naive`` loop
below :data:`~repro.core.kernels.AUTO_SWEEP_CANDIDATES`, the
forward-scan ``sweep`` kernel once the candidate count amortises its
sort/bisect bookkeeping, and the vectorized ``numpy`` kernel from
:data:`~repro.core.kernels.AUTO_NUMPY_CANDIDATES` up (when numpy is
importable; without it the sweep tier extends upward).  A pure
physical-execution choice, since every kernel is bit-identical in pairs
and counters.  One constraint overrides the estimate: with the
decoded-run cache explicitly disabled (``decode_cache_size=0``) the
planner keeps auto selection on ``naive`` — the sorted-column kernels
amortise their per-partition start sort through that cache, so the
planner must never recommend a cache-dependent plan the join can't
execute.

``plan(..., index_path=...)`` points the planner at a persisted index
snapshot (:func:`repro.storage.save_index`): the snapshot's ``stats``
section supplies the duration fractions and cardinalities for all of
the above decisions without scanning the relations, and the path is
threaded into the planned OIPJOIN so execution loads the snapshot
instead of re-partitioning.  A missing or corrupt snapshot costs only
the statistics shortcut — the planner falls back to relation
statistics, and the join itself degrades to an in-memory rebuild.

**Measured costs.**  By default the parallelism decision guesses: it
compares the candidate estimate against an abstract
``parallel_threshold``.  Given a :class:`~repro.obs.calibrate
.Calibration` (cost constants fitted from this machine's own run
reports), the planner instead *predicts the latency* of the sequential
plan via Equation 2 — ``est_comparisons * c_cpu + est_reads * c_io``,
in real milliseconds — and parallelizes exactly when that prediction
crosses ``parallel_min_predicted_ms``.  The calibrated weights are also
threaded into the planned OIPJOIN, where they drive the paper's ``k``
derivation (Equation 2's fixed point).  Same statistics, different
constants, different plan — which is the point: the constants are
measured, not assumed.

The chosen algorithm and the reasoning are exposed on the returned
:class:`JoinPlan` so applications can log plan decisions.  Reasoning
strings are built lazily on first access of :attr:`JoinPlan.reason` —
planning happens on every join, and most callers never log the reason,
so the plan object only pays for the format work when someone asks.
"""

from __future__ import annotations

import os
from typing import Callable, Optional, Union

from ..core.base import JoinResult, OverlapJoinAlgorithm
from ..core.join import OIPJoin
from ..core.kernels import (
    AUTO_NUMPY_CANDIDATES,
    AUTO_SWEEP_CANDIDATES,
    KERNELS,
    choose_kernel,
)
from ..core.relation import TemporalRelation
from ..baselines.sort_merge import SortMergeJoin
from ..storage.buffer import BufferPool
from ..storage.device import DeviceProfile

__all__ = ["JoinPlan", "JoinPlanner"]


class JoinPlan:
    """A chosen join algorithm plus the statistics that justified it.

    ``reason`` may be passed as a string or as a zero-argument callable;
    callables are invoked — and the result cached — on first attribute
    access, so discarding an unlogged plan never pays for string
    formatting.  ``repr()`` of a plan is intentionally cheap and does not
    materialise the reason.
    """

    __slots__ = (
        "algorithm",
        "outer_duration_fraction",
        "inner_duration_fraction",
        "estimated_candidates",
        "predicted_ms",
        "_reason",
    )

    def __init__(
        self,
        algorithm: OverlapJoinAlgorithm,
        reason: Union[str, Callable[[], str]],
        outer_duration_fraction: float,
        inner_duration_fraction: float,
        estimated_candidates: float = 0.0,
        predicted_ms: Optional[float] = None,
    ) -> None:
        self.algorithm = algorithm
        self.outer_duration_fraction = outer_duration_fraction
        self.inner_duration_fraction = inner_duration_fraction
        self.estimated_candidates = estimated_candidates
        #: Calibrated latency prediction (ms) for the sequential plan;
        #: ``None`` when the planner has no calibration.
        self.predicted_ms = predicted_ms
        self._reason = reason

    @property
    def reason(self) -> str:
        """The human-readable planning rationale (built lazily, cached)."""
        if callable(self._reason):
            self._reason = self._reason()
        return self._reason

    @property
    def parallelism(self) -> Optional[int]:
        """Worker count of the planned join, ``None`` when sequential."""
        return getattr(self.algorithm, "parallelism", None)

    def execute(
        self, outer: TemporalRelation, inner: TemporalRelation
    ) -> JoinResult:
        return self.algorithm.join(outer, inner)

    def __repr__(self) -> str:
        return (
            f"JoinPlan(algorithm={self.algorithm.name!r}, "
            f"lambda_r={self.outer_duration_fraction:.2e}, "
            f"lambda_s={self.inner_duration_fraction:.2e}, "
            f"parallelism={self.parallelism!r})"
        )


class JoinPlanner:
    """Pick an overlap-join algorithm (and its parallelism) from relation
    statistics.

    ``point_threshold`` is the duration fraction (``lambda``) below which
    a relation counts as "point data"; the paper's experiments show the
    sort-merge join losing its edge as soon as maximum durations reach a
    fraction of a percent of the time range, so the default is
    conservative.

    ``parallel_threshold`` is the estimated candidate-comparison count
    above which the planner emits a parallel OIPJOIN; ``workers`` caps
    the worker count (default: ``os.cpu_count()``) and
    ``parallel_backend`` picks the pool flavour (see
    :mod:`repro.engine.parallel`).  Pass ``parallel_threshold=None`` to
    disable parallel planning entirely.

    ``kernel`` pins the OIPJOIN's partition-pair join kernel; the
    default ``"auto"`` lets the candidate estimate decide (naive below
    :data:`~repro.core.kernels.AUTO_SWEEP_CANDIDATES`, sweep between
    the thresholds, numpy above
    :data:`~repro.core.kernels.AUTO_NUMPY_CANDIDATES` when importable).

    ``decode_cache_size`` pins the OIPJOIN's decoded-run cache capacity
    (``None``: the library default).  ``0`` disables the cache, which
    also constrains ``"auto"`` kernel selection to ``naive`` — the
    sorted-column kernels depend on the cache to amortise their start
    sort, and the planner must not recommend a plan whose estimate
    assumes an amortisation the join can't perform.
    """

    def __init__(
        self,
        device: Optional[DeviceProfile] = None,
        buffer_pool: Optional[BufferPool] = None,
        point_threshold: float = 1e-5,
        parallel_threshold: Optional[float] = 2_000_000.0,
        workers: Optional[int] = None,
        parallel_backend: str = "thread",
        kernel: str = "auto",
        decode_cache_size: Optional[int] = None,
        tracer=None,
        metrics=None,
        collect_report: bool = False,
        calibration=None,
        parallel_min_predicted_ms: Optional[float] = 50.0,
    ) -> None:
        if point_threshold <= 0:
            raise ValueError(
                f"point threshold must be positive, got {point_threshold}"
            )
        if parallel_threshold is not None and parallel_threshold <= 0:
            raise ValueError(
                f"parallel threshold must be positive, got {parallel_threshold}"
            )
        if workers is not None and workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if kernel not in ("auto",) + KERNELS:
            raise ValueError(
                f"unknown join kernel {kernel!r}; choose from "
                f"{('auto',) + KERNELS}"
            )
        if decode_cache_size is not None and decode_cache_size < 0:
            raise ValueError(
                f"decode_cache_size must be >= 0 (0 disables the "
                f"cache), got {decode_cache_size}"
            )
        if calibration is not None and not hasattr(calibration, "predict_ms"):
            raise ValueError(
                "calibration must be a repro.obs.calibrate.Calibration "
                f"(or expose predict_ms/to_weights), got "
                f"{type(calibration).__name__}"
            )
        if (
            parallel_min_predicted_ms is not None
            and parallel_min_predicted_ms <= 0
        ):
            raise ValueError(
                f"parallel_min_predicted_ms must be positive, got "
                f"{parallel_min_predicted_ms}"
            )
        self.device = device
        self.buffer_pool = buffer_pool
        self.point_threshold = point_threshold
        self.parallel_threshold = parallel_threshold
        self.workers = workers
        self.parallel_backend = parallel_backend
        self.kernel = kernel
        self.decode_cache_size = decode_cache_size
        self.tracer = tracer
        self.metrics = metrics
        self.collect_report = collect_report
        #: Measured cost constants (:class:`repro.obs.calibrate
        #: .Calibration`); when set, parallelism is decided from the
        #: predicted sequential latency and the fitted weights drive the
        #: OIPJOIN ``k`` derivation.
        self.calibration = calibration
        self.parallel_min_predicted_ms = parallel_min_predicted_ms

    # ------------------------------------------------------------------

    def _predict_ms(
        self,
        outer: TemporalRelation,
        inner: TemporalRelation,
        estimated: float,
        outer_cardinality: Optional[int] = None,
        inner_cardinality: Optional[int] = None,
    ) -> Optional[float]:
        """Calibrated Equation-2 latency prediction for the sequential
        plan (``None`` without a calibration)."""
        if self.calibration is None:
            return None
        device = (
            self.device
            if self.device is not None
            else DeviceProfile.main_memory()
        )
        n_r = (
            outer_cardinality
            if outer_cardinality is not None
            else outer.cardinality
        )
        n_s = (
            inner_cardinality
            if inner_cardinality is not None
            else inner.cardinality
        )
        est_reads = device.blocks_for_tuples(n_r) + device.blocks_for_tuples(
            n_s
        )
        return self.calibration.predict_ms(2.0 * estimated, est_reads)

    @staticmethod
    def estimate_candidates(
        outer: TemporalRelation, inner: TemporalRelation
    ) -> float:
        """Estimated probe-phase candidate comparisons.

        Two random intervals with durations ``d_r`` and ``d_s`` in a
        shared range ``U`` overlap with probability roughly
        ``(d_r + d_s) / |U|``; using the maximum-duration fractions as a
        (pessimistic) stand-in gives the coverage factor
        ``min(1, lambda_r + lambda_s)`` on the nested-loop upper bound
        ``n_r * n_s``.
        """
        if outer.is_empty or inner.is_empty:
            return 0.0
        coverage = min(
            1.0, outer.duration_fraction + inner.duration_fraction
        )
        return outer.cardinality * inner.cardinality * coverage

    def _resolve_workers(self) -> int:
        if self.workers is not None:
            return self.workers
        return os.cpu_count() or 1

    def _check_budget(
        self,
        budget,
        outer: TemporalRelation,
        inner: TemporalRelation,
        estimated: float,
    ) -> None:
        """Refuse to plan a join whose *estimate* already exceeds the
        budget — failing at plan time beats failing mid-execution.

        The estimate is deliberately optimistic (one scan of each input
        plus two endpoint comparisons per estimated candidate, no
        partitioning overhead), so a refusal means even a best-case
        execution could not fit; plans that pass still carry the budget
        for exact cooperative enforcement at run time.
        """
        from .governor import BudgetExceededError

        device = (
            self.device
            if self.device is not None
            else DeviceProfile.main_memory()
        )
        est_comparisons = 2.0 * estimated
        if (
            budget.max_comparisons is not None
            and est_comparisons > budget.max_comparisons
        ):
            raise BudgetExceededError(
                f"planner estimate: ~{est_comparisons:.3g} candidate "
                f"comparisons exceed max_comparisons="
                f"{budget.max_comparisons}"
            )
        est_reads = device.blocks_for_tuples(
            outer.cardinality
        ) + device.blocks_for_tuples(inner.cardinality)
        if budget.max_block_reads is not None and est_reads > budget.max_block_reads:
            raise BudgetExceededError(
                f"planner estimate: ~{est_reads} block reads exceed "
                f"max_block_reads={budget.max_block_reads}"
            )
        if budget.max_cost is not None:
            weights = (
                budget.weights
                if budget.weights is not None
                else device.weights
            )
            est_cost = (
                est_comparisons * weights.cpu + est_reads * weights.io
            )
            if est_cost > budget.max_cost:
                raise BudgetExceededError(
                    f"planner estimate: ~{est_cost:.3g} cost units exceed "
                    f"max_cost={budget.max_cost}"
                )

    @staticmethod
    def _index_statistics(index_path: str):
        """Read the planner-relevant statistics persisted in an index
        snapshot.  Returns ``(stats, None)`` on success or ``(None,
        reason_slug)`` when the snapshot is missing/corrupt/malformed —
        the planner then falls back to relation statistics and the
        planned OIPJOIN's own degrade path handles the snapshot."""
        from ..storage.snapshot import SnapshotError, read_statistics

        try:
            stats = read_statistics(index_path)["stats"]
            for side in ("outer", "inner"):
                float(stats[side]["duration_fraction"])
                int(stats[side]["cardinality"])
        except SnapshotError as error:
            return None, error.reason
        except (OSError, KeyError, TypeError, ValueError):
            return None, "inconsistent"
        return stats, None

    def plan(
        self,
        outer: TemporalRelation,
        inner: TemporalRelation,
        budget=None,
        index_path: Optional[str] = None,
    ) -> JoinPlan:
        """Choose the algorithm for ``outer JOIN inner``.

        With a :class:`~repro.engine.governor.QueryBudget`, the planner
        first refuses plans whose optimistic cost estimate already
        exceeds the budget (raising :class:`~repro.engine.governor
        .BudgetExceededError` before any work), then threads the budget
        into the planned OIPJOIN for cooperative runtime enforcement.

        ``index_path`` names a persisted index snapshot (see
        :func:`repro.storage.save_index`).  Its ``stats`` section —
        duration fractions and cardinalities recorded at save time —
        replaces the relation scan in the algorithm/parallelism/kernel
        decisions, and the path is threaded into the planned OIPJOIN so
        execution loads the snapshot instead of re-partitioning (with
        graceful degradation to a rebuild if the snapshot is corrupt).
        A missing or unreadable snapshot only costs the statistics
        shortcut: the planner falls back to relation statistics and
        notes the reason.
        """
        index_stats = None
        index_note = ""
        if index_path is not None:
            index_stats, index_error = self._index_statistics(index_path)
            if index_stats is None:
                index_note = (
                    f"; index statistics unavailable ({index_error}): "
                    "planned from relation statistics"
                )
        if index_stats is not None:
            outer_lambda = float(index_stats["outer"]["duration_fraction"])
            inner_lambda = float(index_stats["inner"]["duration_fraction"])
            coverage = min(1.0, outer_lambda + inner_lambda)
            outer_cardinality = int(index_stats["outer"]["cardinality"])
            inner_cardinality = int(index_stats["inner"]["cardinality"])
            estimated = outer_cardinality * inner_cardinality * coverage
            index_note = "; planned from persisted index statistics"
        else:
            outer_lambda = (
                outer.duration_fraction if not outer.is_empty else 0.0
            )
            inner_lambda = (
                inner.duration_fraction if not inner.is_empty else 0.0
            )
            outer_cardinality = inner_cardinality = None
            estimated = self.estimate_candidates(outer, inner)
        predicted_ms = self._predict_ms(
            outer, inner, estimated, outer_cardinality, inner_cardinality
        )
        if budget is not None:
            self._check_budget(budget, outer, inner, estimated)
        if (
            outer_lambda <= self.point_threshold
            and inner_lambda <= self.point_threshold
        ):
            algorithm: OverlapJoinAlgorithm = SortMergeJoin(
                device=self.device,
                buffer_pool=self.buffer_pool,
                tracer=self.tracer,
                metrics=self.metrics,
                collect_report=self.collect_report,
            )

            def reason() -> str:
                base = (
                    "both inputs are (near-)point data "
                    f"(lambda_r={outer_lambda:.2e}, "
                    f"lambda_s={inner_lambda:.2e} "
                    f"<= {self.point_threshold:.0e}): sort-merge join "
                    "wins on short tuples"
                )
                base += index_note
                if index_path is not None:
                    base += (
                        "; persisted OIP snapshot left unused "
                        "(sort-merge plan)"
                    )
                return base

        else:
            workers = self._resolve_workers()
            parallelism: Optional[int] = None
            if self.calibration is not None:
                # Measured-cost rule: parallelize when the *predicted*
                # sequential latency is long enough to amortise pool
                # startup, regardless of the abstract candidate count.
                if (
                    self.parallel_min_predicted_ms is not None
                    and workers > 1
                    and predicted_ms is not None
                    and predicted_ms >= self.parallel_min_predicted_ms
                ):
                    parallelism = workers
            elif (
                self.parallel_threshold is not None
                and workers > 1
                and estimated >= self.parallel_threshold
            ):
                parallelism = workers
            # The same candidate estimate picks the partition-pair
            # kernel; pinned explicitly (rather than left "auto") so the
            # plan's reasoning matches exactly what the join will run.
            # choose_kernel is the single source of truth for the
            # three-way thresholds, numpy availability and the
            # cache-disabled constraint.
            cache_enabled = (
                self.decode_cache_size is None or self.decode_cache_size > 0
            )
            if self.kernel == "auto":
                kernel = choose_kernel(
                    outer,
                    inner,
                    cache_enabled=cache_enabled,
                    estimated=(
                        estimated if index_stats is not None else None
                    ),
                )
            else:
                kernel = self.kernel
            algorithm = OIPJoin(
                device=self.device,
                buffer_pool=self.buffer_pool,
                parallelism=parallelism,
                parallel_backend=self.parallel_backend,
                kernel=kernel,
                decode_cache_size=self.decode_cache_size,
                budget=budget,
                tracer=self.tracer,
                metrics=self.metrics,
                collect_report=self.collect_report,
                index_path=index_path,
                # Calibrated constants drive the paper's k derivation in
                # place of the device's assumed weights.
                weights=(
                    self.calibration.to_weights()
                    if self.calibration is not None
                    else None
                ),
            )

            def reason() -> str:
                base = (
                    "long-lived tuples present "
                    f"(lambda_r={outer_lambda:.2e}, "
                    f"lambda_s={inner_lambda:.2e}): "
                    "OIPJOIN is robust to long-lived tuples"
                )
                if self.calibration is not None and predicted_ms is not None:
                    base += (
                        f"; calibrated prediction {predicted_ms:.1f} ms "
                        "sequential"
                    )
                    if parallelism is not None:
                        base += (
                            f" >= {self.parallel_min_predicted_ms:.0f} ms: "
                            f"scheduling partition pairs on {parallelism} "
                            f"{self.parallel_backend} workers"
                        )
                    else:
                        base += (
                            " (below the "
                            f"{self.parallel_min_predicted_ms:.0f} ms "
                            "parallel floor: sequential)"
                            if self.parallel_min_predicted_ms is not None
                            else " (parallel planning disabled)"
                        )
                elif parallelism is not None:
                    base += (
                        f"; ~{estimated:.2e} estimated candidate "
                        f"comparisons >= {self.parallel_threshold:.0e}: "
                        f"scheduling partition pairs on {parallelism} "
                        f"{self.parallel_backend} workers"
                    )
                if self.kernel != "auto":
                    base += f"; {kernel} kernel (pinned)"
                elif not cache_enabled:
                    base += (
                        "; naive kernel (decode cache disabled: the "
                        "sorted-column kernels need it to amortise "
                        "their start sort)"
                    )
                elif kernel == "numpy":
                    base += (
                        f"; ~{estimated:.2e} estimated candidates "
                        f">= {AUTO_NUMPY_CANDIDATES:.0e}: "
                        "vectorized numpy kernel"
                    )
                elif kernel == "sweep":
                    base += (
                        f"; ~{estimated:.2e} estimated candidates "
                        f">= {AUTO_SWEEP_CANDIDATES:.0e}: "
                        "forward-scan sweep kernel"
                    )
                else:
                    base += "; naive kernel below the sweep threshold"
                base += index_note
                if index_path is not None and index_note.endswith(
                    "persisted index statistics"
                ):
                    base += "; execution loads the snapshot"
                return base

        return JoinPlan(
            algorithm=algorithm,
            reason=reason,
            outer_duration_fraction=outer_lambda,
            inner_duration_fraction=inner_lambda,
            estimated_candidates=estimated,
            predicted_ms=predicted_ms,
        )

    def join(
        self,
        outer: TemporalRelation,
        inner: TemporalRelation,
        budget=None,
        index_path: Optional[str] = None,
    ) -> JoinResult:
        """Plan and execute in one call."""
        plan = self.plan(outer, inner, budget=budget, index_path=index_path)
        return plan.execute(outer, inner)
