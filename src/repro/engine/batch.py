"""Batched multi-query execution over one shared OIP partitioning.

The paper's join answers one overlap query — the whole relation pair.
Many analytical workloads instead ask a *family* of windowed queries
against the same pair ("overlaps within each day of the last month"),
and running :class:`~repro.core.join.OIPJoin` once per window would
repeat the two most expensive shared steps every time: the ``OIPCREATE``
sort-and-partition pass of Algorithm 1 and the columnar decode of the
partition runs the probes touch.

:class:`BatchJoin` amortises both.  It partitions the pair **once** (the
trace of a batch run carries exactly two ``oipcreate`` spans, however
many queries follow) and shares **one**
:class:`~repro.core.kernels.DecodedRunCache` across all queries, so a
partition decoded for query 0 is reused by every later query that
probes it.  Each query then runs the Lemma 1 navigation with its window
as the pruning interval:

* the *outer* side is walked with :meth:`~repro.core.oip
  .OIPConfiguration.clamped_query_indices` of the window, so outer
  partitions disjoint from the window are never fetched;
* each relevant outer partition issues the overlap query with the
  *intersection* of its partition interval and the window (a tighter
  interval than Algorithm 2's, never missing a windowed result because
  every result pair must overlap inside the window);
* the partition-pair kernel (:mod:`repro.core.kernels` — shared with
  the single-query join, including the numpy tier) yields the
  overlapping pairs, which a final two-comparison test filters against
  the window.

A pair ``(r, s)`` matches window ``W`` iff ``max(r.TS, s.TS, W.TS) <=
min(r.TE, s.TE, W.TE)`` — plain interval overlap of all three.

Costs are charged with the same analytic conventions as the sequential
loop so counters are kernel-independent: per partition pair ``2 *
candidates`` CPU comparisons for the overlap test plus ``2 *
matches`` for the window test, and one false hit per fetched candidate
that did not become a windowed result.  Every query gets its **own**
:class:`~repro.storage.metrics.CostCounters` (the storage manager's
counter sink is swapped per query), so per-query run reports are
directly comparable; the shared build cost is reported once on the
batch.

Lifecycle and observability reuse the existing machinery: an optional
:class:`AdmissionController` admits each query, an optional
:class:`~repro.engine.governor.QueryBudget` /
:class:`~repro.engine.governor.CancellationToken` pair is enforced at
outer-partition boundaries through a per-query
:class:`~repro.engine.governor.GovernedRun` (a cancel stops the batch
with the partial query marked ``completed=False``), metrics flow into
the shared registry, and ``collect_report=True`` builds one
schema-valid run report per query.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..core.base import JoinResult
from ..core.granules import cost_model_for, derive_k
from ..core.interval import Interval
from ..core.kernels import (
    DEFAULT_CACHE_CAPACITY,
    DecodedRun,
    DecodedRunCache,
    KERNELS,
    kernel_function,
    resolve_kernel,
)
from ..core.lazy_list import oip_create
from ..core.oip import OIPConfiguration
from ..core.relation import TemporalRelation
from ..storage.device import DeviceProfile
from ..storage.faults import FaultInjector, FaultPolicy
from ..storage.manager import StorageManager
from ..storage.metrics import CostCounters, CostWeights, ResilienceCounters
from .governor import AdmissionController, GovernedRun

__all__ = ["BatchJoin", "BatchResult", "equal_windows"]


def equal_windows(time_range: Interval, count: int) -> List[Interval]:
    """*count* contiguous, near-equal windows covering *time_range*.

    The first ``duration % count`` windows are one point longer, so the
    windows tile the range exactly — every time point belongs to one
    window (the CLI's ``--batch N`` uses this split).
    """
    if count < 1:
        raise ValueError(f"window count must be >= 1, got {count}")
    width, extra = divmod(time_range.duration, count)
    if width == 0:
        raise ValueError(
            f"cannot split {time_range.duration} time points into "
            f"{count} non-empty windows"
        )
    windows: List[Interval] = []
    start = time_range.start
    for index in range(count):
        stop = start + width + (1 if index < extra else 0)
        windows.append(Interval(start, stop - 1))
        start = stop
    return windows


@dataclass
class BatchResult:
    """Outcome of one :meth:`BatchJoin.run`.

    ``queries`` holds one :class:`~repro.core.base.JoinResult` per
    *executed* window, in window order — after a cancellation the list
    is shorter than ``windows`` and its last entry has
    ``completed=False``.  ``build_counters`` carries the shared
    ``OIPCREATE`` charges made once for the whole batch; per-query
    probe charges live on each query's own counters.
    """

    algorithm: str
    windows: List[Interval]
    queries: List[JoinResult]
    build_counters: CostCounters
    resilience: ResilienceCounters = field(default_factory=ResilienceCounters)
    details: Dict[str, Any] = field(default_factory=dict)
    completed: bool = True
    elapsed_ms: float = 0.0

    def __len__(self) -> int:
        return len(self.queries)

    @property
    def total_pairs(self) -> int:
        """Result pairs summed over all executed queries."""
        return sum(len(query.pairs) for query in self.queries)

    def combined_counters(self) -> CostCounters:
        """Build charges plus every query's probe charges, merged."""
        combined = self.build_counters
        for query in self.queries:
            combined = combined.merged_with(query.counters)
        return combined


class BatchJoin:
    """N windowed overlap queries over one shared OIP partitioning.

    Parameters mirror :class:`~repro.core.join.OIPJoin` where the
    semantics carry over (``device``, ``k``, ``weights``, ``kernel``,
    ``decode_cache_size``, resilience and observability keywords); the
    batch-specific ones are:

    admission:
        An optional :class:`AdmissionController`; every query of the
        batch acquires one slot for the duration of its probe (the
        batch itself is sequential, so the controller's effect is the
        shared accounting — and back-pressure against *other* sessions
        using the same controller).
    admission_timeout:
        Seconds each query waits for an admission slot.
    budget:
        An optional :class:`~repro.engine.governor.QueryBudget`
        enforced **per query** at outer-partition boundaries (each
        query gets a fresh :class:`GovernedRun`, so a deadline budget
        restarts per window).
    cancellation:
        A shared :class:`~repro.engine.governor.CancellationToken`; a
        cancel observed at a boundary finishes the current query as a
        partial result (``completed=False``) and skips the remaining
        windows.
    """

    name = "oip.batch"

    def __init__(
        self,
        device: Optional[DeviceProfile] = None,
        k: Optional[int] = None,
        weights: Optional[CostWeights] = None,
        kernel: str = "auto",
        decode_cache_size: Optional[int] = None,
        admission: Optional[AdmissionController] = None,
        admission_timeout: Optional[float] = None,
        budget: Optional[Any] = None,
        cancellation: Optional[Any] = None,
        fault_policy: Optional[FaultPolicy] = None,
        max_read_retries: int = 3,
        verify_checksums: bool = True,
        tracer: Optional[Any] = None,
        metrics: Optional[Any] = None,
        collect_report: bool = False,
    ) -> None:
        if k is not None and k < 1:
            raise ValueError(f"k must be >= 1 when pinned, got {k}")
        if kernel not in ("auto",) + KERNELS:
            raise ValueError(
                f"unknown join kernel {kernel!r}; choose from "
                f"{('auto',) + KERNELS}"
            )
        if decode_cache_size is not None and decode_cache_size < 0:
            raise ValueError(
                f"decode_cache_size must be >= 0 (0 disables the "
                f"cache), got {decode_cache_size}"
            )
        if max_read_retries < 0:
            raise ValueError(
                f"max_read_retries must be >= 0, got {max_read_retries}"
            )
        self.device = (
            device if device is not None else DeviceProfile.main_memory()
        )
        self.fixed_k = k
        self.weights = weights
        self.kernel = kernel
        self.decode_cache_size = (
            DEFAULT_CACHE_CAPACITY
            if decode_cache_size is None
            else decode_cache_size
        )
        self.admission = admission
        self.admission_timeout = admission_timeout
        self.budget = budget
        self.cancellation = cancellation
        self.fault_policy = fault_policy
        self.max_read_retries = max_read_retries
        self.verify_checksums = verify_checksums
        self.tracer = tracer
        self.metrics = metrics
        self.collect_report = collect_report

    # ------------------------------------------------------------------

    def _derive_k(
        self, outer: TemporalRelation, inner: TemporalRelation
    ) -> Tuple[int, bool]:
        if self.fixed_k is not None:
            return self.fixed_k, False
        model = cost_model_for(
            outer, inner, device=self.device, weights=self.weights
        )
        return derive_k(model).k, True

    def _run_tracer(self) -> Any:
        tracer = self.tracer
        if tracer is not None and (tracer.enabled or not self.collect_report):
            return tracer
        if self.collect_report:
            # Reports need phase timings even without a caller tracer.
            from ..obs.trace import Tracer

            return Tracer()
        from ..obs.trace import NULL_TRACER

        return NULL_TRACER

    def run(
        self,
        outer: TemporalRelation,
        inner: TemporalRelation,
        windows: List[Interval],
    ) -> BatchResult:
        """Execute one windowed overlap query per entry of *windows*."""
        if not windows:
            raise ValueError("batch execution needs at least one window")
        started = time.perf_counter()
        build_counters = CostCounters()
        batch_resilience = ResilienceCounters()
        if outer.is_empty or inner.is_empty:
            return self._empty_batch(windows, build_counters, started)

        tracer = self._run_tracer()
        cache_enabled = self.decode_cache_size > 0
        kernel = resolve_kernel(
            self.kernel, outer, inner, cache_enabled=cache_enabled
        )
        kernel_fn = kernel_function(kernel)
        cache = (
            DecodedRunCache(self.decode_cache_size) if cache_enabled else None
        )

        queries: List[JoinResult] = []
        query_spans: List[Any] = []
        trace_marks: List[Tuple[int, int]] = []
        cancelled = False
        with tracer.span("batch", algorithm=self.name, windows=len(windows)):
            with tracer.span("derive_k") as k_span:
                k, self_adjusting = self._derive_k(outer, inner)
                k_outer = max(1, min(k, outer.time_range_duration))
                k_inner = max(1, min(k, inner.time_range_duration))
                k_span.set("k_outer", k_outer)
                k_span.set("k_inner", k_inner)
                k_span.set("self_adjusting", self_adjusting)

            config_r = OIPConfiguration.for_relation(outer, k_outer)
            config_s = OIPConfiguration.for_relation(inner, k_inner)
            injector = (
                FaultInjector(self.fault_policy)
                if self.fault_policy is not None
                else None
            )
            storage = StorageManager(
                device=self.device,
                counters=build_counters,
                fault_injector=injector,
                resilience=batch_resilience,
                max_retries=self.max_read_retries,
                verify_checksums=self.verify_checksums,
                tracer=tracer,
            )
            # The batch's one partitioning pass: exactly two oipcreate
            # spans appear in the trace, however many windows follow.
            with tracer.span("oipcreate", side="outer") as create_span:
                outer_list = oip_create(outer, config_r, storage)
                create_span.set("partitions", outer_list.partition_count)
            with tracer.span("oipcreate", side="inner") as create_span:
                inner_list = oip_create(inner, config_s, storage)
                create_span.set("partitions", inner_list.partition_count)

            for index, window in enumerate(windows):
                spans_before = tracer.span_count
                events_before = tracer.event_count
                if self.admission is not None:
                    with self.admission.admit(timeout=self.admission_timeout):
                        result, span = self._run_query(
                            index,
                            window,
                            outer_list,
                            inner_list,
                            storage,
                            batch_resilience,
                            kernel,
                            kernel_fn,
                            cache,
                            tracer,
                        )
                else:
                    result, span = self._run_query(
                        index,
                        window,
                        outer_list,
                        inner_list,
                        storage,
                        batch_resilience,
                        kernel,
                        kernel_fn,
                        cache,
                        tracer,
                    )
                queries.append(result)
                query_spans.append(span)
                # The query span is closed by now, so these deltas cover
                # exactly this query's spans/events.
                trace_marks.append(
                    (
                        tracer.span_count - spans_before,
                        tracer.event_count - events_before,
                    )
                )
                if self.metrics is not None:
                    for key, value in result.counters.snapshot().items():
                        self.metrics.counter(f"join.counters.{key}").inc(value)
                    for key, value in result.resilience.snapshot().items():
                        self.metrics.counter(
                            f"join.resilience.{key}"
                        ).inc(value)
                if not result.completed:
                    # A cancel stops the whole batch: later windows would
                    # observe the same cancelled token immediately.
                    cancelled = True
                    break

        if self.metrics is not None:
            self.metrics.publish_dict(
                "batch.build", build_counters.snapshot()
            )
            storage.publish_metrics(self.metrics)
            if cache is not None:
                cache.publish_metrics(self.metrics)
            if self.admission is not None:
                self.admission.publish_metrics(self.metrics)
        if self.collect_report:
            self._attach_reports(queries, query_spans, trace_marks)

        details: Dict[str, Any] = {
            "k": k_inner if k_inner == k_outer else (k_outer, k_inner),
            "outer_partitions": outer_list.partition_count,
            "inner_partitions": inner_list.partition_count,
            "self_adjusting": self_adjusting,
            "kernel": kernel,
            "windows": len(windows),
            "queries_executed": len(queries),
        }
        if self.kernel not in ("auto", kernel):
            details["kernel_requested"] = self.kernel
        if cache is not None:
            details["kernel_cache"] = cache.snapshot()
        if self.admission is not None:
            details["admission"] = self.admission.stats.snapshot()
        if cancelled:
            details["cancelled"] = True
        return BatchResult(
            algorithm=self.name,
            windows=list(windows),
            queries=queries,
            build_counters=build_counters,
            resilience=batch_resilience,
            details=details,
            completed=not cancelled,
            elapsed_ms=(time.perf_counter() - started) * 1000.0,
        )

    def _empty_batch(
        self,
        windows: List[Interval],
        build_counters: CostCounters,
        started: float,
    ) -> BatchResult:
        """All-empty results for an empty input side (no partitioning,
        no spans — mirrors the base class's empty-input short circuit)."""
        queries = [
            JoinResult(
                algorithm=self.name,
                pairs=[],
                counters=CostCounters(),
                details={"query_index": index, "window": (w.start, w.end)},
            )
            for index, w in enumerate(windows)
        ]
        return BatchResult(
            algorithm=self.name,
            windows=list(windows),
            queries=queries,
            build_counters=build_counters,
            details={"windows": len(windows), "queries_executed": len(windows)},
            elapsed_ms=(time.perf_counter() - started) * 1000.0,
        )

    # ------------------------------------------------------------------

    def _run_query(
        self,
        index: int,
        window: Interval,
        outer_list,
        inner_list,
        storage: StorageManager,
        batch_resilience: ResilienceCounters,
        kernel: str,
        kernel_fn,
        cache: Optional[DecodedRunCache],
        tracer,
    ) -> Tuple[JoinResult, Any]:
        """One windowed query against the shared partitioning.

        The storage manager's counter and resilience sinks are swapped
        to this query's own for the duration of the probe, so block IO
        and fault recovery are attributed to the query that caused them;
        the per-query resilience events are merged back into the batch
        totals afterwards.
        """
        query_started = time.perf_counter()
        counters = CostCounters()
        resilience = ResilienceCounters()
        storage.counters = counters
        storage.resilience = resilience
        governor = (
            GovernedRun(
                budget=self.budget,
                cancellation=self.cancellation,
                weights=(
                    self.weights
                    if self.weights is not None
                    else self.device.weights
                ),
                tracer=tracer,
            )
            if self.budget is not None or self.cancellation is not None
            else None
        )
        pairs: List = []
        cancelled = False
        visited = 0
        span = tracer.span(
            "query", index=index, window=(window.start, window.end)
        )
        try:
            if governor is not None:
                governor.preflight()
            with tracer.span("probe", mode="sequential"):
                cancelled, visited = self._probe_window(
                    window,
                    outer_list,
                    inner_list,
                    storage,
                    counters,
                    resilience,
                    pairs,
                    governor,
                    kernel,
                    kernel_fn,
                    cache,
                    tracer,
                )
        finally:
            span.__exit__(None, None, None)
            batch_resilience.merge(resilience)
        counters.result_tuples = len(pairs)
        details: Dict[str, Any] = {
            "query_index": index,
            "window": (window.start, window.end),
            "kernel": kernel,
            "outer_partitions_visited": visited,
            "shared_partitioning": True,
        }
        if self.kernel not in ("auto", kernel):
            details["kernel_requested"] = self.kernel
        if cancelled:
            details["cancelled"] = True
            details["partitions_completed"] = visited
        result = JoinResult(
            algorithm=self.name,
            pairs=pairs,
            counters=counters,
            details=details,
            resilience=resilience,
            completed=not cancelled,
            elapsed_ms=(time.perf_counter() - query_started) * 1000.0,
        )
        return result, span

    def _probe_window(
        self,
        window: Interval,
        outer_list,
        inner_list,
        storage: StorageManager,
        counters: CostCounters,
        resilience: ResilienceCounters,
        pairs: List,
        governor: Optional[GovernedRun],
        kernel: str,
        kernel_fn,
        cache: Optional[DecodedRunCache],
        tracer,
    ) -> Tuple[bool, int]:
        """The Lemma 1 probe of one window; returns ``(cancelled,
        outer partitions visited)``.

        Charging follows the sequential loop's conventions (see
        :meth:`repro.core.join.OIPJoin._probe_sequential`): one CPU
        comparison per navigation test, one partition access per
        fetched inner partition, ``2 * candidates`` comparisons per
        partition pair, plus — batch-specific — two comparisons per
        kernel match for the window test, and one false hit per fetched
        candidate that produced no windowed result.
        """
        config_r, config_s = outer_list.config, inner_list.config
        outer_span = config_r.clamped_query_indices(window)
        if outer_span is None:
            return False, 0
        s_w, e_w = outer_span
        w_start, w_end = window.start, window.end
        trace = tracer if tracer.enabled else None
        read_run = storage.read_run
        charge_cpu = counters.charge_cpu
        charge_false_hit = counters.charge_false_hit
        charge_partition_access = counters.charge_partition_access
        visited = 0

        main = outer_list.head
        while main is not None:
            charge_cpu()  # j >= s test of the outer window walk
            if main.j < s_w:
                break
            outer_node = main
            while outer_node is not None:
                charge_cpu()  # i <= e test
                if outer_node.i > e_w:
                    break
                if governor is not None and governor.boundary(
                    visited, counters, resilience, pairs
                ):
                    return True, visited
                visited += 1
                detected_before = (
                    resilience.corruptions_detected
                    + resilience.pool_invalidations
                )
                outer_tuples = list(
                    read_run(
                        outer_node.run,
                        context=(
                            "outer partition",
                            (outer_node.i, outer_node.j),
                        ),
                    )
                )
                outer_dirty = (
                    resilience.corruptions_detected
                    + resilience.pool_invalidations
                ) != detected_before
                n_outer = len(outer_tuples)
                # The query interval is the partition interval clamped
                # to the window — tighter than Algorithm 2's, and safe:
                # a windowed result pair must overlap inside the window.
                partition = config_r.partition_interval(
                    outer_node.i, outer_node.j
                )
                query = Interval(
                    max(partition.start, w_start),
                    min(partition.end, w_end),
                )
                charge_cpu(2)  # range-overlap guard
                inner_span = config_s.clamped_query_indices(query)
                if inner_span is None:
                    outer_node = outer_node.right
                    continue
                s, e = inner_span
                outer_decoded = self._decoded(
                    outer_node.run, outer_tuples, cache, outer_dirty, trace
                )

                node = inner_list.head
                while node is not None:
                    charge_cpu()  # j >= s test
                    if node.j < s:
                        break
                    branch = node
                    while branch is not None:
                        charge_cpu()  # i <= e test
                        if branch.i > e:
                            break
                        charge_partition_access()
                        detected_before = (
                            resilience.corruptions_detected
                            + resilience.pool_invalidations
                        )
                        inner_tuples = list(
                            read_run(
                                branch.run,
                                context=(
                                    "inner partition",
                                    (branch.i, branch.j),
                                ),
                            )
                        )
                        inner_decoded = self._decoded(
                            branch.run,
                            inner_tuples,
                            cache,
                            (
                                resilience.corruptions_detected
                                + resilience.pool_invalidations
                            )
                            != detected_before,
                            trace,
                        )
                        candidates = inner_decoded.length * n_outer
                        charge_cpu(2 * candidates)
                        if trace is not None:
                            with trace.span(
                                "kernel." + kernel, candidates=candidates
                            ):
                                matches = kernel_fn(
                                    outer_decoded, inner_decoded
                                )
                        else:
                            matches = kernel_fn(outer_decoded, inner_decoded)
                        # Two more comparisons per overlapping pair for
                        # the window test; pairs overlapping each other
                        # but not the window count as false hits too.
                        charge_cpu(2 * len(matches))
                        emitted = 0
                        for encoded in matches:
                            outer_tuple = outer_tuples[encoded % n_outer]
                            inner_tuple = inner_tuples[encoded // n_outer]
                            if (
                                max(outer_tuple.start, inner_tuple.start)
                                <= w_end
                                and w_start
                                <= min(outer_tuple.end, inner_tuple.end)
                            ):
                                pairs.append((outer_tuple, inner_tuple))
                                emitted += 1
                        charge_false_hit(candidates - emitted)
                        branch = branch.right
                    node = node.down
                outer_node = outer_node.right
            main = main.down
        return False, visited

    def _decoded(
        self,
        run,
        tuples: List[Any],
        cache: Optional[DecodedRunCache],
        dirty: bool,
        trace,
    ) -> DecodedRun:
        """Columnar decode of one partition run, memoised in the shared
        batch cache (both sides share it — run identities never
        collide).  *dirty* flags that a corruption was detected (and
        recovered) while re-reading the run's blocks just now: any
        cached decode predates the recovery and is invalidated."""
        if cache is None:
            return DecodedRun.from_tuples(tuples)
        key = id(run)
        if dirty:
            cache.invalidate(key)
        decoded = cache.get(key)
        if decoded is None:
            if trace is not None:
                with trace.span("kernel.decode", tuples=len(tuples)):
                    decoded = DecodedRun.from_tuples(tuples)
            else:
                decoded = DecodedRun.from_tuples(tuples)
            cache.put(key, decoded)
        return decoded

    # ------------------------------------------------------------------

    def _attach_reports(
        self,
        queries: List[JoinResult],
        query_spans: List[Any],
        trace_marks: List[Tuple[int, int]],
    ) -> None:
        """Build one schema-valid run report per executed query, rooted
        at that query's trace span (finished by now — the batch span
        closed first)."""
        from ..obs.report import build_report

        weights = (
            self.weights if self.weights is not None else self.device.weights
        )
        metrics_snapshot = (
            self.metrics.snapshot() if self.metrics is not None else None
        )
        for position, result in enumerate(queries):
            span = query_spans[position]
            span_count, event_count = trace_marks[position]
            governor_summary = None
            if not result.completed:
                governor_summary = {
                    "cancelled": True,
                    "partitions_completed": result.details.get(
                        "partitions_completed", 0
                    ),
                }
            result.report = build_report(
                result,
                self.device,
                weights,
                root=span if getattr(span, "end_ms", None) is not None else None,
                span_count=span_count,
                event_count=event_count,
                governor=governor_summary,
                metrics=metrics_snapshot,
            )
