"""Composable query operators over temporal relations.

A thin, eager operator algebra so applications can express the paper's
motivating queries — "overlap join, then refine" — without touching join
internals::

    query = (
        OverlapJoinOperator(ScanOperator(employees), ScanOperator(projects))
        .refine(overlaps_at_least(5))
    )
    for employee, project, shared in query.execute():
        ...

Operators evaluate to plain Python lists; this is a reproduction harness,
not a volcano engine, but the shapes (scan -> filter -> join -> refine)
mirror how the OIPJOIN would slot into an optimizer as "an efficient
option if other predicates are absent, exhibit a poor selectivity, or
must be evaluated after the overlapping interval has been computed"
(Section 1).
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from ..core.base import JoinResult, OverlapJoinAlgorithm
from ..core.interval import Interval
from ..core.join import OIPJoin
from ..core.relation import TemporalRelation, TemporalTuple
from .predicates import PairPredicate, overlap_interval

__all__ = [
    "ScanOperator",
    "SelectOperator",
    "TimeSliceOperator",
    "OverlapJoinOperator",
    "JoinedRow",
]

#: One refined join row: outer tuple, inner tuple, overlapping interval.
JoinedRow = Tuple[TemporalTuple, TemporalTuple, Interval]


class ScanOperator:
    """Leaf operator: yields a relation unchanged."""

    def __init__(self, relation: TemporalRelation) -> None:
        self.relation = relation

    def execute(self) -> TemporalRelation:
        return self.relation

    def select(
        self, predicate: Callable[[TemporalTuple], bool]
    ) -> "SelectOperator":
        return SelectOperator(self, predicate)

    def time_slice(self, window: Interval) -> "TimeSliceOperator":
        return TimeSliceOperator(self, window)


class SelectOperator:
    """Filter on the explicit attributes or the interval."""

    def __init__(
        self,
        source: "ScanOperator | SelectOperator | TimeSliceOperator",
        predicate: Callable[[TemporalTuple], bool],
    ) -> None:
        self.source = source
        self.predicate = predicate

    def execute(self) -> TemporalRelation:
        relation = self.source.execute()
        return relation.filter(self.predicate)

    def select(
        self, predicate: Callable[[TemporalTuple], bool]
    ) -> "SelectOperator":
        return SelectOperator(self, predicate)


class TimeSliceOperator:
    """Keep only tuples whose valid time intersects a window."""

    def __init__(
        self,
        source: "ScanOperator | SelectOperator | TimeSliceOperator",
        window: Interval,
    ) -> None:
        self.source = source
        self.window = window

    def execute(self) -> TemporalRelation:
        window = self.window
        return self.source.execute().filter(
            lambda tup: tup.overlaps_interval(window)
        )


class OverlapJoinOperator:
    """Overlap join node; the join algorithm is injectable (defaults to
    the self-adjusting OIPJOIN) so the planner can swap it."""

    def __init__(
        self,
        outer: "ScanOperator | SelectOperator | TimeSliceOperator",
        inner: "ScanOperator | SelectOperator | TimeSliceOperator",
        algorithm: Optional[OverlapJoinAlgorithm] = None,
    ) -> None:
        self.outer = outer
        self.inner = inner
        self.algorithm = algorithm if algorithm is not None else OIPJoin()
        self._refinements: List[PairPredicate] = []
        self.last_result: Optional[JoinResult] = None

    def refine(self, predicate: PairPredicate) -> "OverlapJoinOperator":
        """Add a post-join predicate over the matched pairs (evaluated
        after the overlapping interval exists, as in the Section 1
        employee/project example)."""
        self._refinements.append(predicate)
        return self

    def execute(self) -> List[JoinedRow]:
        """Run the join and the refinements; returns rows of
        ``(outer tuple, inner tuple, overlapping interval)``."""
        result = self.algorithm.join(
            self.outer.execute(), self.inner.execute()
        )
        self.last_result = result
        rows: List[JoinedRow] = []
        for outer_tuple, inner_tuple in result.pairs:
            if all(
                predicate(outer_tuple, inner_tuple)
                for predicate in self._refinements
            ):
                shared = overlap_interval(outer_tuple, inner_tuple)
                assert shared is not None  # join guarantees overlap
                rows.append((outer_tuple, inner_tuple, shared))
        return rows
