"""Parallel OIPJOIN execution — partition-pair scheduling over a worker
pool.

The OIPJOIN probe phase (Algorithm 2) is embarrassingly parallel: every
outer partition issues an independent overlap query against a *read-only*
inner lazy partition list, and Lemma 1 tells us exactly which inner
partitions each query can touch (``j >= s`` and ``i <= e``).  This module
exploits that structure in three steps:

1. **Enumerate** — :func:`build_probe_schedule` walks the outer list once
   in the exact order of the sequential join and, for every outer
   partition, replays the Lemma-1 navigation of the inner list to collect
   the relevant ``(outer-partition, inner-partition)`` pairs up front.
   The walk's bookkeeping (the ``j >= s`` / ``i <= e`` index tests, the
   Algorithm-2 range-overlap guard and one partition access per relevant
   inner partition) is charged to the driver's counters during
   enumeration — these are exactly the charges the sequential loop makes
   while navigating, so nothing is double- or under-counted.

2. **Schedule** — :func:`execute_schedule` splits the probe tasks into
   contiguous chunks and runs them on a :mod:`concurrent.futures` pool.
   Two backends are supported:

   * ``"thread"`` — a :class:`~concurrent.futures.ThreadPoolExecutor`.
     Workers share the in-memory partition tables directly; no data is
     copied.  Under the CPython GIL the pure-Python match kernel executes
     one thread at a time, so threads mostly help when a future
     accelerator releases the GIL — but the backend is cheap to spin up
     and is therefore the default.
   * ``"process"`` — a :class:`~concurrent.futures.ProcessPoolExecutor`.
     The read-only inner partition table is pickled **once per worker
     process** (via the pool initializer), and tasks are shipped in
     chunks so the per-task pickling is amortised.  Both the table and
     the tasks are *columnar* — flat ``array('q')`` endpoint columns,
     never tuple objects (tuples stay driver-side for the merge) — so
     the pickled payloads are compact, and workers send back only
     match-index lists and a counter snapshot.  This backend achieves
     real CPU parallelism and is the right choice for large joins on
     multi-core machines.

3. **Merge** — chunk results are folded back **in submission order**
   (never completion order).  Pairs are reconstructed from the *driver's*
   tuple objects using the match indices, so the result list is
   element-for-element identical to the sequential join — same pairs,
   same order, same object identities — regardless of backend, worker
   count or scheduling jitter.

Determinism guarantees
----------------------

The parallel join is a pure reordering of the sequential join's work, and
its output is **bit-identical** to the sequential path:

* *Result set* — workers return ``(inner-index, outer-index)`` match
  positions; the driver rebuilds ``(outer, inner)`` pairs in the
  sequential nesting order (outer partition → relevant inner partition →
  inner tuple → outer tuple).
* *CostCounters* — every sequential charge is accounted exactly once:
  enumeration charges the navigation CPU tests and partition accesses;
  workers charge block reads, the two endpoint comparisons per candidate
  pair, and false hits.  The ``sequential_reads`` / ``random_reads``
  split depends on the storage manager's last-read-block chain, which is
  order-dependent global state — so the schedule precomputes, for every
  chunk, the block id the *sequential* join would have read last before
  the chunk's first task, and each worker resumes the chain from there.
  Summing the per-worker counters therefore reproduces the sequential
  totals field by field, keeping AFR/APA accounting exact.

The one configuration the parallel path does not support is a shared
:class:`~repro.storage.buffer.BufferPool`: pool hits depend on the global
interleaving of reads, which parallel execution intentionally destroys.
:class:`~repro.core.join.OIPJoin` falls back to the sequential probe loop
when a buffer pool is attached (and records the fallback in the result
details).

Resilient execution
-------------------

:func:`execute_schedule` tolerates degraded workers without giving up the
determinism contract:

* **per-chunk timeouts** — a chunk whose result does not arrive within
  ``timeout`` seconds is counted and re-submitted;
* **chunk retries** — a chunk that fails with a worker-side exception is
  re-submitted up to ``max_chunk_retries`` times.  A failed attempt
  returns nothing, so its partial counter charges are discarded and the
  successful attempt charges exactly once — retried runs stay
  bit-identical to undisturbed ones;
* **graceful degradation** — when the pool itself breaks (a crashed
  process worker, :class:`concurrent.futures.BrokenExecutor`) or a chunk
  exhausts its retries, the remaining chunks are re-run on the in-process
  sequential path and the downgrade is recorded in the
  :class:`ExecutionReport` and the resilience counters;
* **fault-schedule parity** — workers route their block-read charging
  through :func:`repro.storage.faults.perform_read` with the same
  deterministic :class:`~repro.storage.faults.FaultPolicy` as the
  sequential join, so transient faults, retries and the random-IO retry
  charges are reproduced identically in parallel runs.  A *permanent*
  fault makes the chunk fail deterministically on every attempt,
  including the final in-process one, and the structured storage error
  (naming block and partition) propagates instead of partial results.

:class:`WorkerFaultPlan` is the chaos hook for the executor itself: it
injects worker-side failures, hard process crashes and slow chunks on
pooled attempts only (the degraded in-process path ignores it, as the
driver is assumed healthy).
"""

from __future__ import annotations

import concurrent.futures
import os
import time
from array import array
from dataclasses import dataclass, field
from typing import Any, List, Mapping, NamedTuple, Optional, Sequence, Tuple

from ..core.base import JoinPair
from ..core.kernels import (
    DecodedRun,
    DecodedRunCache,
    decode_columns,
    kernel_function,
)
from ..core.lazy_list import LazyPartitionList
from ..storage.faults import (
    FaultInjector,
    FaultPolicy,
    StorageFaultError,
    perform_read,
)
from ..storage.metrics import CostCounters, ResilienceCounters

__all__ = [
    "BACKENDS",
    "InnerPartition",
    "ProbeTask",
    "ProbeSchedule",
    "ExecutionReport",
    "WorkerFaultPlan",
    "InjectedWorkerError",
    "build_probe_schedule",
    "execute_schedule",
    "map_tasks",
    "merge_counters",
]

#: Supported worker-pool backends.
BACKENDS = ("thread", "process")


class InnerPartition(NamedTuple):
    """One inner partition, flattened into columnar form for shipping to
    workers: parallel ``array('q')`` endpoint columns plus the run's
    block ids.  Tuple objects stay driver-side (in
    :attr:`ProbeSchedule.inner_tuples`) — workers only ever see flat
    integer columns, which keeps the process backend's initializer
    payload compact."""

    starts: array
    ends: array
    block_ids: Tuple[int, ...]


class ProbeTask(NamedTuple):
    """One outer partition's probe work.

    The outer partition ships as columnar ``array('q')`` endpoint
    columns (the matching tuple objects stay driver-side in
    :attr:`ProbeSchedule.outer_tuples`).  ``relevant`` holds indices
    into the schedule's inner-partition table, in the exact Lemma-1
    traversal order of the sequential join; ``last_read_in`` is the
    block id the sequential join would have read immediately before
    this task (``None`` at the very start), used to resume the
    sequential/random read chain deterministically.  ``nav_cpu`` /
    ``nav_accesses`` record the navigation charges the enumeration made
    for this task (the CPU index tests plus the range-overlap guard,
    and the partition accesses), so the governor can convert the
    driver's charged-up-front counters into the *sequential-equivalent*
    state at any chunk boundary.
    """

    index: int
    outer_starts: array
    outer_ends: array
    outer_block_ids: Tuple[int, ...]
    relevant: Tuple[int, ...]
    last_read_in: Optional[int]
    nav_cpu: int = 0
    nav_accesses: int = 0


@dataclass
class ProbeSchedule:
    """The enumerated partition-pair work of one OIPJOIN probe phase.

    ``tasks`` and ``inner_table`` are the worker-facing columnar views;
    ``outer_tuples`` (indexed by task index) and ``inner_tuples``
    (indexed like ``inner_table``) are the driver-side tuple tables the
    merge uses to rebuild result pairs from match indices.
    """

    tasks: List[ProbeTask]
    inner_table: List[InnerPartition]
    pair_count: int
    outer_tuples: List[tuple] = field(default_factory=list)
    inner_tuples: List[tuple] = field(default_factory=list)

    @property
    def task_count(self) -> int:
        return len(self.tasks)


@dataclass
class ExecutionReport:
    """What :func:`execute_schedule` had to do to complete a schedule."""

    backend: str = "thread"
    chunks: int = 0
    chunk_retries: int = 0
    chunk_timeouts: int = 0
    worker_crashes: int = 0
    #: Chunks completed on the in-process sequential path after the pool
    #: degraded or a chunk exhausted its retries.
    downgraded_chunks: int = 0
    #: Probe tasks whose results were merged by this execution (excludes
    #: tasks skipped via ``start_at`` on a resume).
    tasks_completed: int = 0
    #: True when a cooperative cancellation stopped the execution early;
    #: the merged pairs/counters form a well-defined partial result.
    cancelled: bool = False
    #: State of the circuit breaker that governed this execution, when
    #: one was consulted (``"closed"`` / ``"open"`` / ``"half-open"``).
    breaker_state: Optional[str] = None

    @property
    def degraded(self) -> bool:
        return self.downgraded_chunks > 0


class InjectedWorkerError(RuntimeError):
    """A worker failure injected by a :class:`WorkerFaultPlan`."""


@dataclass(frozen=True)
class WorkerFaultPlan:
    """Deterministic executor-level chaos, applied to pooled attempts.

    ``fail_chunks[c] = n`` makes the first ``n`` pooled attempts of chunk
    ``c`` raise :class:`InjectedWorkerError`; ``crash_chunks`` hard-kills
    the worker process on the chunk's first attempt (thread workers
    cannot be killed, so the thread backend raises instead — still a
    retryable worker failure); ``slow_chunks[c] = seconds`` sleeps before
    the chunk runs, for exercising per-chunk timeouts.  The plan must be
    picklable: it ships to process workers.
    """

    fail_chunks: Mapping[int, int] = field(default_factory=dict)
    crash_chunks: frozenset = frozenset()
    slow_chunks: Mapping[int, float] = field(default_factory=dict)

    def apply(self, chunk_index: int, attempt: int) -> None:
        """Run the plan's effect for one pooled chunk attempt (worker
        side); may sleep, raise, or kill the worker process."""
        delay = self.slow_chunks.get(chunk_index)
        if delay:
            time.sleep(delay)
        if chunk_index in self.crash_chunks and attempt == 0:
            if _PROCESS_INNER_TABLE is not None:
                # Genuine worker death: breaks the process pool, which the
                # driver must survive by degrading to sequential.
                os._exit(17)
            raise InjectedWorkerError(
                f"injected crash in chunk {chunk_index}"
            )
        if attempt < self.fail_chunks.get(chunk_index, 0):
            raise InjectedWorkerError(
                f"injected failure in chunk {chunk_index} "
                f"(attempt {attempt})"
            )


def build_probe_schedule(
    outer_list: LazyPartitionList,
    inner_list: LazyPartitionList,
    k_inner: int,
    counters: CostCounters,
    charge_from: int = 0,
) -> ProbeSchedule:
    """Enumerate the relevant partition pairs of ``outer JOIN inner``.

    Replays the navigation of the sequential Algorithm 2 loop — including
    its exact CPU and partition-access charges — and records, per outer
    partition, the relevant inner partitions plus the incoming position of
    the block-read chain.  Block reads themselves and the per-candidate
    endpoint comparisons are *not* charged here; the workers charge them.

    ``charge_from`` supports checkpoint resume: tasks with an index below
    it are still enumerated (the read chain and pair order need them) but
    their navigation charges are *not* added to *counters* — a restored
    checkpoint already contains them.
    """
    config_r, config_s = outer_list.config, inner_list.config
    d_r, o_r = config_r.d, config_r.o
    d_s, o_s = config_s.d, config_s.o
    inner_range_start = o_s
    inner_range_stop = o_s + k_inner * d_s  # exclusive

    # Flatten the inner list once into columnar form; nodes keep their
    # traversal identity through an id() map (PartitionNode is
    # unhashable-by-value on purpose — identity is exactly what we want
    # here).  Tuple objects stay in the driver-side table for the merge.
    inner_table: List[InnerPartition] = []
    inner_tuple_table: List[tuple] = []
    inner_index = {}
    for node in inner_list.iter_nodes():
        inner_index[id(node)] = len(inner_table)
        tuples = tuple(node.run.iter_tuples())
        starts, ends = decode_columns(tuples)
        inner_table.append(
            InnerPartition(
                starts=starts,
                ends=ends,
                block_ids=tuple(node.run.block_ids),
            )
        )
        inner_tuple_table.append(tuples)

    tasks: List[ProbeTask] = []
    outer_tuple_table: List[tuple] = []
    pair_count = 0
    last_read: Optional[int] = None
    for task_index, outer_node in enumerate(outer_list.iter_nodes()):
        outer_block_ids = tuple(outer_node.run.block_ids)
        relevant: List[int] = []

        query_start = o_r + outer_node.i * d_r
        query_end = o_r + (outer_node.j + 1) * d_r - 1
        nav_cpu = 2  # range-overlap guard of Algorithm 2
        if not (
            query_end < inner_range_start or query_start >= inner_range_stop
        ):
            s = (query_start - o_s) // d_s
            e = (query_end - o_s) // d_s
            # Lemma 1 navigation, with the sequential join's charges: one
            # index comparison per main-list (j >= s) and branch-list
            # (i <= e) test, one partition access per relevant partition.
            node = inner_list.head
            while node is not None:
                nav_cpu += 1  # j >= s test
                if node.j < s:
                    break
                branch = node
                while branch is not None:
                    nav_cpu += 1  # i <= e test
                    if branch.i > e:
                        break
                    relevant.append(inner_index[id(branch)])
                    branch = branch.right
                node = node.down
        if task_index >= charge_from:
            counters.charge_cpu(nav_cpu)
            if relevant:
                counters.charge_partition_access(len(relevant))

        outer_tuples = tuple(outer_node.run.iter_tuples())
        outer_starts, outer_ends = decode_columns(outer_tuples)
        outer_tuple_table.append(outer_tuples)
        tasks.append(
            ProbeTask(
                index=task_index,
                outer_starts=outer_starts,
                outer_ends=outer_ends,
                outer_block_ids=outer_block_ids,
                relevant=tuple(relevant),
                last_read_in=last_read,
                nav_cpu=nav_cpu,
                nav_accesses=len(relevant),
            )
        )
        pair_count += len(relevant)

        # Advance the deterministic read chain: the sequential join reads
        # the outer run first, then every relevant inner run in order.
        for block_id in outer_block_ids:
            last_read = block_id
        for rel in relevant:
            for block_id in inner_table[rel].block_ids:
                last_read = block_id

    return ProbeSchedule(
        tasks=tasks,
        inner_table=inner_table,
        pair_count=pair_count,
        outer_tuples=outer_tuple_table,
        inner_tuples=inner_tuple_table,
    )


# ----------------------------------------------------------------------
# Worker-side kernel.  Module-level (picklable) and dependent only on its
# arguments / the per-process table installed by the pool initializer, so
# both backends run the identical code path.
# ----------------------------------------------------------------------

_PROCESS_INNER_TABLE: Optional[List[InnerPartition]] = None
_PROCESS_DECODE_CACHE: Optional[DecodedRunCache] = None


def _init_process_worker(inner_table: List[InnerPartition]) -> None:
    """Pool initializer: install the read-only inner partition table once
    per worker process (amortises pickling across all chunks), plus a
    fresh per-process decoded-run cache so the sweep kernel's start-sort
    of an inner partition happens at most once per worker process."""
    global _PROCESS_INNER_TABLE, _PROCESS_DECODE_CACHE
    _PROCESS_INNER_TABLE = inner_table
    _PROCESS_DECODE_CACHE = DecodedRunCache()


def _charge_run_reads(
    counters: CostCounters,
    block_ids: Sequence[int],
    last_read: Optional[int],
    injector: Optional[FaultInjector] = None,
    resilience: Optional[ResilienceCounters] = None,
    max_retries: int = 3,
    context: Any = None,
) -> Optional[int]:
    """Charge the block reads of one run, continuing the sequential/random
    chain from *last_read* exactly as the storage manager would.  With an
    *injector*, each read runs the same :func:`perform_read` retry loop as
    the sequential join, reproducing its fault schedule and retry charges."""
    if injector is None:
        for block_id in block_ids:
            counters.charge_read(
                sequential=last_read is not None and block_id == last_read + 1
            )
            last_read = block_id
        return last_read
    for block_id in block_ids:
        last_read = perform_read(
            block_id,
            counters,
            last_read,
            injector=injector,
            resilience=resilience,
            max_retries=max_retries,
            context=context,
        )
    return last_read


def _run_probe_chunk(
    tasks: Sequence[ProbeTask],
    inner_table: Optional[List[InnerPartition]] = None,
    chunk_index: int = 0,
    attempt: int = 0,
    fault_policy: Optional[FaultPolicy] = None,
    max_read_retries: int = 3,
    worker_faults: Optional[WorkerFaultPlan] = None,
    kernel: str = "naive",
    decode_cache: Optional[DecodedRunCache] = None,
):
    """Probe a contiguous chunk of outer partitions through the *kernel*
    (:mod:`repro.core.kernels`).

    Returns ``(counters, resilience, matches)`` where ``matches[t][r]`` is
    the list of hits of task ``t``'s ``r``-th relevant inner partition,
    each hit encoded as the single integer ``inner_pos * n_outer +
    outer_pos`` — ascending encoded order is exactly the sequential
    join's inner-major emission order (every kernel returns that order),
    and flat ints keep the process backend's result pickling small.
    Only indices and counters cross the process boundary; the driver
    rebuilds pairs from its own tuple objects.

    The model costs are charged analytically per partition pair — two
    CPU comparisons per candidate and ``candidates - results`` false
    hits, the exact totals of the historical per-candidate loop — so
    counters are identical for every kernel.  *decode_cache* memoises
    the per-partition :class:`~repro.core.kernels.DecodedRun` wrapper
    (and with it the sweep kernel's lazy start-sort); the columnar data
    itself is immutable schedule state, so worker-side cache entries can
    never go stale.
    """
    if inner_table is None:
        inner_table = _PROCESS_INNER_TABLE
        assert inner_table is not None, "process worker not initialised"
        decode_cache = _PROCESS_DECODE_CACHE
    if worker_faults is not None:
        worker_faults.apply(chunk_index, attempt)
    counters = CostCounters()
    resilience = ResilienceCounters()
    injector = (
        FaultInjector(fault_policy) if fault_policy is not None else None
    )
    # Resolved here — in the worker process for the process backend — so
    # a "numpy" kernel name degrades to the sweep kernel wherever numpy
    # cannot be imported, without the driver having to know (the two are
    # bit-identical in matches, so mixed resolution is harmless).
    kernel_fn = kernel_function(kernel)
    # Tasks within a chunk are contiguous, so the read chain of the first
    # task seeds the whole chunk.
    last_read = tasks[0].last_read_in
    matches: List[List[List[int]]] = []
    for task in tasks:
        last_read = _charge_run_reads(
            counters,
            task.outer_block_ids,
            last_read,
            injector=injector,
            resilience=resilience,
            max_retries=max_read_retries,
            context=("outer partition", task.index),
        )
        outer_decoded = DecodedRun(task.outer_starts, task.outer_ends)
        n_outer = outer_decoded.length
        task_matches: List[List[int]] = []
        for rel in task.relevant:
            partition = inner_table[rel]
            last_read = _charge_run_reads(
                counters,
                partition.block_ids,
                last_read,
                injector=injector,
                resilience=resilience,
                max_retries=max_read_retries,
                context=("inner partition", rel),
            )
            if decode_cache is not None:
                inner_decoded = decode_cache.fetch(
                    rel,
                    lambda part=partition: DecodedRun(
                        part.starts, part.ends
                    ),
                )
            else:
                inner_decoded = DecodedRun(partition.starts, partition.ends)
            candidates = inner_decoded.length * n_outer
            counters.charge_cpu(2 * candidates)
            hits = kernel_fn(outer_decoded, inner_decoded)
            counters.charge_false_hit(candidates - len(hits))
            task_matches.append(hits)
        matches.append(task_matches)
    return counters, resilience, matches


def _run_probe_chunk_process(
    tasks: Sequence[ProbeTask],
    chunk_index: int = 0,
    attempt: int = 0,
    fault_policy: Optional[FaultPolicy] = None,
    max_read_retries: int = 3,
    worker_faults: Optional[WorkerFaultPlan] = None,
    kernel: str = "naive",
):
    """Process-backend entry point: reads the initializer-installed table
    (and the per-process decode cache it comes with)."""
    return _run_probe_chunk(
        tasks,
        None,
        chunk_index=chunk_index,
        attempt=attempt,
        fault_policy=fault_policy,
        max_read_retries=max_read_retries,
        worker_faults=worker_faults,
        kernel=kernel,
    )


# ----------------------------------------------------------------------
# Driver-side scheduling and deterministic merge.
# ----------------------------------------------------------------------


def _chunk_tasks(
    tasks: Sequence[ProbeTask], workers: int, chunk_size: Optional[int]
) -> List[Sequence[ProbeTask]]:
    """Split tasks into contiguous chunks (contiguity keeps the read
    chain self-consistent inside each chunk)."""
    if chunk_size is None:
        # A few chunks per worker balances load without shipping one
        # task at a time; process workers amortise pickling per chunk.
        chunk_size = max(1, -(-len(tasks) // (workers * 4)))
    if chunk_size < 1:
        raise ValueError(f"chunk size must be >= 1, got {chunk_size}")
    return [
        tasks[start : start + chunk_size]
        for start in range(0, len(tasks), chunk_size)
    ]


def execute_schedule(
    schedule: ProbeSchedule,
    counters: CostCounters,
    pairs: List[JoinPair],
    workers: int = 1,
    backend: str = "thread",
    chunk_size: Optional[int] = None,
    resilience: Optional[ResilienceCounters] = None,
    fault_policy: Optional[FaultPolicy] = None,
    max_read_retries: int = 3,
    timeout: Optional[float] = None,
    max_chunk_retries: int = 2,
    worker_faults: Optional[WorkerFaultPlan] = None,
    governor: Optional[Any] = None,
    start_at: int = 0,
    tracer: Optional[Any] = None,
    kernel: str = "naive",
    decode_cache: Optional[DecodedRunCache] = None,
    candidate_histogram: Optional[Any] = None,
) -> ExecutionReport:
    """Run *schedule* on a worker pool, merging results deterministically.

    Worker counters are summed into *counters* (and worker resilience
    events into *resilience*) and reconstructed pairs appended to *pairs*
    in chunk-submission order, so the outcome is independent of
    completion order and identical to the sequential join.  Failed or
    timed-out chunks are retried and, past ``max_chunk_retries`` or a
    broken pool, completed on the in-process sequential path (see the
    module docstring); the returned :class:`ExecutionReport` records what
    happened.  Structured storage faults
    (:class:`~repro.storage.faults.StorageFaultError`) are *not* retried
    at chunk level — their schedule is deterministic, so they propagate
    immediately instead of burning the retry budget.

    Lifecycle hooks:

    * ``start_at`` skips the first *start_at* tasks — a checkpoint resume;
      their charges must already be in *counters* (see
      :func:`build_probe_schedule`'s ``charge_from``).
    * ``governor`` — a :class:`~repro.engine.governor.GovernedRun` (duck
      typed) consulted at every chunk boundary, mirroring the sequential
      loop's outer-partition boundary checks.  The governor sees
      *sequential-equivalent* counters: the enumeration charges
      navigation for all tasks up front, so the boundary check subtracts
      the recorded navigation of not-yet-merged tasks before asking.  A
      cancelled run stops merging, rolls the pending navigation charges
      out of the live counters (making the partial counters exactly the
      sequential join's state at that boundary) and returns with
      ``report.cancelled`` set; a violated budget propagates the
      governor's :class:`~repro.engine.governor.BudgetExceededError`.
    * ``tracer`` — a driver-side phase tracer (duck typed to
      :class:`~repro.obs.trace.Tracer`); chunk lifecycle events
      (dispatch, retry, timeout, downgrade, crash, completion) are
      recorded by the *driver*, never by workers, so tracing cannot
      perturb the deterministic worker results.

    Kernel hooks:

    * ``kernel`` — the partition-pair join kernel name
      (:data:`repro.core.kernels.KERNELS`); every kernel returns the
      identical hits in the identical order and the model costs are
      charged analytically, so the choice cannot affect pairs or
      counters.
    * ``decode_cache`` — a :class:`~repro.core.kernels.DecodedRunCache`
      shared by the inline path and thread workers (it is thread-safe);
      process workers use a private per-process cache installed by the
      pool initializer instead, since the driver's cache cannot cross
      the process boundary.
    * ``candidate_histogram`` — a duck-typed histogram observed with the
      candidate count of every merged partition pair, driver-side in
      submission order (matching the sequential loop's observation
      sequence exactly).
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    if backend not in BACKENDS:
        raise ValueError(
            f"unknown backend {backend!r}; choose from {BACKENDS}"
        )
    if timeout is not None and timeout <= 0:
        raise ValueError(f"chunk timeout must be > 0, got {timeout}")
    if max_chunk_retries < 0:
        raise ValueError(
            f"max_chunk_retries must be >= 0, got {max_chunk_retries}"
        )
    if not 0 <= start_at <= len(schedule.tasks):
        raise ValueError(
            f"start_at must be within [0, {len(schedule.tasks)}], "
            f"got {start_at}"
        )
    trace = tracer if tracer is not None and tracer.enabled else None
    report = ExecutionReport(backend=backend)
    tasks = schedule.tasks[start_at:] if start_at else schedule.tasks
    if not tasks:
        return report

    chunks = _chunk_tasks(tasks, workers, chunk_size)
    report.chunks = len(chunks)

    def run_inline(index: int):
        """The degraded path: the driver probes the chunk itself.  The
        worker fault plan does not apply (the driver is healthy); storage
        faults still do, so permanent faults keep failing structurally."""
        return _run_probe_chunk(
            chunks[index],
            schedule.inner_table,
            chunk_index=index,
            fault_policy=fault_policy,
            max_read_retries=max_read_retries,
            kernel=kernel,
            decode_cache=decode_cache,
        )

    if workers == 1 or len(chunks) == 1:
        # Inline fast path: same kernel, no pool, nothing to degrade to.
        # Lazily evaluated so a boundary stop skips unprobed chunks.
        outcome_iter = (run_inline(index) for index in range(len(chunks)))
    else:
        outcome_iter = _pool_outcomes(
            chunks,
            schedule.inner_table,
            workers,
            backend,
            report,
            fault_policy,
            max_read_retries,
            timeout,
            max_chunk_retries,
            worker_faults,
            run_inline,
            trace,
            kernel,
            decode_cache,
        )

    # Suffix sums of the navigation charges of not-yet-merged chunks:
    # pending_*[c] is what must be subtracted from the live counters to
    # obtain the sequential-equivalent state at the boundary *before*
    # chunk c.
    pending_cpu = pending_accesses = None
    if governor is not None:
        pending_cpu = [0] * (len(chunks) + 1)
        pending_accesses = [0] * (len(chunks) + 1)
        for index in range(len(chunks) - 1, -1, -1):
            pending_cpu[index] = pending_cpu[index + 1] + sum(
                task.nav_cpu for task in chunks[index]
            )
            pending_accesses[index] = pending_accesses[index + 1] + sum(
                task.nav_accesses for task in chunks[index]
            )

    outer_tuple_table = schedule.outer_tuples
    inner_tuple_table = schedule.inner_tuples
    observe = (
        candidate_histogram.observe
        if candidate_histogram is not None
        else None
    )
    boundary_resilience = (
        resilience if resilience is not None else ResilienceCounters()
    )
    done = start_at
    try:
        for index, chunk in enumerate(chunks):
            if governor is not None:
                equivalent = counters.merged_with(CostCounters())
                equivalent.cpu_comparisons -= pending_cpu[index]
                equivalent.partition_accesses -= pending_accesses[index]
                if governor.boundary(
                    done, equivalent, boundary_resilience, pairs
                ):
                    report.cancelled = True
                    # Roll back the pending navigation charges so the
                    # partial counters are exactly the sequential state.
                    counters.cpu_comparisons -= pending_cpu[index]
                    counters.partition_accesses -= pending_accesses[index]
                    break
            chunk_counters, chunk_resilience, chunk_matches = next(
                outcome_iter
            )
            _merge_into(counters, chunk_counters)
            if resilience is not None:
                resilience.merge(chunk_resilience)
            for task, task_matches in zip(chunk, chunk_matches):
                outer_tuples = outer_tuple_table[task.index]
                n_outer = len(outer_tuples)
                for rel, hits in zip(task.relevant, task_matches):
                    inner_tuples = inner_tuple_table[rel]
                    if observe is not None:
                        observe(len(inner_tuples) * n_outer)
                    pairs += [
                        (
                            outer_tuples[encoded % n_outer],
                            inner_tuples[encoded // n_outer],
                        )
                        for encoded in hits
                    ]
            done += len(chunk)
            report.tasks_completed += len(chunk)
            if trace is not None:
                trace.event(
                    "chunk.completed", chunk=index, tasks=len(chunk)
                )
    finally:
        # Abandoning the iterator early (cancel or budget stop) must
        # still shut the worker pool down.
        close = getattr(outcome_iter, "close", None)
        if close is not None:
            close()
    if resilience is not None:
        resilience.chunk_retries += report.chunk_retries
        resilience.chunk_timeouts += report.chunk_timeouts
        resilience.worker_crashes += report.worker_crashes
        resilience.sequential_downgrades += report.downgraded_chunks
    return report


def _pool_outcomes(
    chunks: List[Sequence[ProbeTask]],
    inner_table: List[InnerPartition],
    workers: int,
    backend: str,
    report: ExecutionReport,
    fault_policy: Optional[FaultPolicy],
    max_read_retries: int,
    timeout: Optional[float],
    max_chunk_retries: int,
    worker_faults: Optional[WorkerFaultPlan],
    run_inline,
    trace: Optional[Any] = None,
    kernel: str = "naive",
    decode_cache: Optional[DecodedRunCache] = None,
):
    """Pooled execution with retry, timeout and degradation handling.

    Yields one outcome per chunk, in chunk order, so the caller can merge
    incrementally and stop between chunks (closing the generator shuts
    the pool down).  Chunks whose pooled attempts are exhausted — or
    every remaining chunk once the pool itself breaks — complete via
    *run_inline*.
    """
    if backend == "thread":
        pool = concurrent.futures.ThreadPoolExecutor(max_workers=workers)

        def submit(index: int, attempt: int):
            return pool.submit(
                _run_probe_chunk,
                chunks[index],
                inner_table,
                chunk_index=index,
                attempt=attempt,
                fault_policy=fault_policy,
                max_read_retries=max_read_retries,
                worker_faults=worker_faults,
                kernel=kernel,
                decode_cache=decode_cache,
            )

    else:  # process backend
        pool = concurrent.futures.ProcessPoolExecutor(
            max_workers=workers,
            initializer=_init_process_worker,
            initargs=(inner_table,),
        )

        def submit(index: int, attempt: int):
            return pool.submit(
                _run_probe_chunk_process,
                chunks[index],
                chunk_index=index,
                attempt=attempt,
                fault_policy=fault_policy,
                max_read_retries=max_read_retries,
                worker_faults=worker_faults,
                kernel=kernel,
            )

    pool_broken = False
    try:
        futures = [submit(index, 0) for index in range(len(chunks))]
        if trace is not None:
            trace.event(
                "chunk.dispatched", chunks=len(chunks), backend=backend
            )
        for index in range(len(chunks)):
            attempt = 0
            outcome = None
            while outcome is None:
                if pool_broken:
                    outcome = run_inline(index)
                    report.downgraded_chunks += 1
                    if trace is not None:
                        trace.event(
                            "chunk.downgraded", chunk=index,
                            reason="pool_broken",
                        )
                    break
                try:
                    outcome = futures[index].result(timeout=timeout)
                    break
                except StorageFaultError:
                    # Deterministic data fault: retrying cannot help, and
                    # partial results must not be returned.
                    raise
                except concurrent.futures.TimeoutError:
                    report.chunk_timeouts += 1
                    if trace is not None:
                        trace.event(
                            "chunk.timeout", chunk=index, attempt=attempt
                        )
                except concurrent.futures.BrokenExecutor:
                    # The pool is gone (worker crash); every remaining
                    # chunk degrades to the in-process path.
                    report.worker_crashes += 1
                    pool_broken = True
                    if trace is not None:
                        trace.event("worker.crash", chunk=index)
                    continue
                except Exception:
                    pass  # retryable worker failure
                attempt += 1
                if attempt > max_chunk_retries:
                    # Retry budget exhausted: last resort is the driver.
                    outcome = run_inline(index)
                    report.downgraded_chunks += 1
                    if trace is not None:
                        trace.event(
                            "chunk.downgraded", chunk=index,
                            reason="retries_exhausted",
                        )
                    break
                report.chunk_retries += 1
                if trace is not None:
                    trace.event(
                        "chunk.retry", chunk=index, attempt=attempt
                    )
                futures[index] = submit(index, attempt)
            yield outcome
    finally:
        pool.shutdown(wait=False, cancel_futures=True)


def map_tasks(
    fn: Any,
    items: Sequence[Any],
    *,
    backend: str = "thread",
    max_workers: Optional[int] = None,
) -> List[Any]:
    """Order-preserving parallel map over independent tasks.

    The scatter half of the service's time-shard router: each item is an
    independent shard of work, results come back in submission order so
    the merge stays deterministic.  ``backend`` follows :data:`BACKENDS`
    plus ``"inline"`` (run in the calling thread — the degenerate case
    used for one item, one worker, or deterministic debugging).  The
    first worker exception propagates to the caller once the pool has
    settled, exactly like a sequential loop would raise it.
    """
    if backend not in BACKENDS + ("inline",):
        raise ValueError(
            f"unknown map backend {backend!r}; choose from "
            f"{BACKENDS + ('inline',)}"
        )
    items = list(items)
    workers = (
        max(1, min(len(items), max_workers or (os.cpu_count() or 1)))
        if items
        else 1
    )
    if backend == "inline" or workers == 1 or len(items) <= 1:
        return [fn(item) for item in items]
    executor_cls = (
        concurrent.futures.ThreadPoolExecutor
        if backend == "thread"
        else concurrent.futures.ProcessPoolExecutor
    )
    with executor_cls(max_workers=workers) as pool:
        return list(pool.map(fn, items))


def merge_counters(target: CostCounters, delta: CostCounters) -> None:
    """Public alias of :func:`_merge_into` for cross-layer callers (the
    time-shard router sums per-shard counters into one merged result)."""
    _merge_into(target, delta)


def _merge_into(target: CostCounters, delta: CostCounters) -> None:
    """Add every field of *delta* onto *target* in place (callers hold a
    reference to *target*, so :meth:`CostCounters.merged_with`'s fresh
    object is not usable here)."""
    target.cpu_comparisons += delta.cpu_comparisons
    target.block_reads += delta.block_reads
    target.block_writes += delta.block_writes
    target.sequential_reads += delta.sequential_reads
    target.random_reads += delta.random_reads
    target.buffer_hits += delta.buffer_hits
    target.false_hits += delta.false_hits
    target.partition_accesses += delta.partition_accesses
    target.result_tuples += delta.result_tuples
    for key, value in delta.extras.items():
        target.extras[key] = target.extras.get(key, 0) + value
