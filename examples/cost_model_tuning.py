#!/usr/bin/env python3
"""The self-adjusting granule count in action (Sections 6.2 and 7).

Part 1 replays the paper's Example 8 at full paper scale (the k
derivation is purely analytical, so 10M x 100M tuples cost nothing) and
prints the convergence table.

Part 2 sweeps the c_cpu / c_io ratio as in Figure 6(a) and shows how the
derived k adapts: expensive CPU -> more granules (fewer false hits to
filter), expensive IO -> fewer granules (fewer partially filled blocks
to fetch).

Run with:  python examples/cost_model_tuning.py
"""

from repro.core.granules import JoinCostModel, derive_k
from repro.storage import CostWeights


def example_8() -> None:
    print("Example 8: convergence of k (n_r=10M, n_s=100M)")
    model = JoinCostModel(
        outer_cardinality=10_000_000,
        inner_cardinality=100_000_000,
        outer_duration_fraction=0.0001,
        inner_duration_fraction=0.0005,
        tuples_per_block=14,
        weights=CostWeights(cpu=0.5, io=10.0),
    )
    derivation = derive_k(model)
    print(f"  {'n':>3} {'k_n':>8} {'|p_r|_n':>10} {'tau_n':>10}")
    for step_index, step in enumerate(derivation.trace):
        print(
            f"  {step_index:>3} {step.k:>8,} {step.outer_partitions:>10,} "
            f"{step.tau:>10.5f}"
        )
    print(
        f"  -> converged to k = {derivation.k:,} "
        f"(paper: 16,521; oscillated: {derivation.oscillated})\n"
    )


def figure_6_sweep() -> None:
    print("Figure 6(a): derived k vs c_cpu / c_io")
    print(f"  {'c_cpu/c_io':>10} {'k':>8} {'analytic AFR bound':>20}")
    for ratio in (0.001, 0.01, 0.1, 1.0, 10.0, 100.0):
        model = JoinCostModel(
            outer_cardinality=10_000_000,
            inner_cardinality=100_000_000,
            outer_duration_fraction=0.001,
            inner_duration_fraction=0.001,
            tuples_per_block=14,
            weights=CostWeights.from_ratio(ratio),
        )
        k = derive_k(model).k
        print(f"  {ratio:>10} {k:>8,} {1 / k:>19.5%}")
    print(
        "\n  reading: when CPU gets more expensive relative to IO, the\n"
        "  join buys more granules (higher k) to cut false-hit filtering;\n"
        "  when IO dominates, it accepts false hits to touch fewer\n"
        "  partially filled blocks."
    )


def main() -> None:
    example_8()
    figure_6_sweep()


if __name__ == "__main__":
    main()
