#!/usr/bin/env python3
"""Quickstart: the overlap join in five minutes.

Builds two small valid-time relations (the running example of the paper,
Figures 1 and 2, with months mapped to integers 1..12), joins them with
the self-adjusting OIPJOIN, and prints the matched pairs together with
the cost counters the library records for every run.

Run with:  python examples/quickstart.py
"""

from repro import OIPJoin, TemporalRelation


def main() -> None:
    # Relation r (Figure 1): three tuples over 2012-05 .. 2012-11.
    r = TemporalRelation.from_records(
        [(5, 5, "r1"), (6, 6, "r2"), (8, 11, "r3")],
        name="r",
    )
    # Relation s (Figure 2): seven tuples over 2012-01 .. 2012-12.
    s = TemporalRelation.from_records(
        [
            (1, 1, "s1"),
            (2, 3, "s2"),
            (2, 5, "s3"),
            (5, 11, "s4"),
            (5, 5, "s5"),
            (6, 10, "s6"),
            (8, 12, "s7"),
        ],
        name="s",
    )

    # Pin k = 4 to match the paper's illustration; drop the argument and
    # the join derives the cost-optimal k itself (Section 6.2).
    join = OIPJoin(k=4)
    result = join.join(r, s)

    print(f"overlap join {r.name} ⋈ {s.name}: {len(result)} pairs")
    for outer, inner in sorted(
        result.pairs, key=lambda p: (p[0].payload, p[1].payload)
    ):
        shared_start = max(outer.start, inner.start)
        shared_end = min(outer.end, inner.end)
        print(
            f"  {outer.payload} [{outer.start:>2}, {outer.end:>2}]  x  "
            f"{inner.payload} [{inner.start:>2}, {inner.end:>2}]  "
            f"overlap [2012-{shared_start}, 2012-{shared_end}]"
        )

    print("\ncost counters (the quantities the paper plots):")
    for key, value in sorted(result.counters.snapshot().items()):
        print(f"  {key:>20}: {value}")
    print(f"\npartitioning details: {result.details}")

    # Self-adjusting mode: the join derives k from the cost model.
    auto = OIPJoin().join(r, s)
    print(
        f"\nself-adjusting run: derived k = {auto.details['k']} "
        f"in {auto.details['k_derivation_steps']} iteration(s)"
    )


if __name__ == "__main__":
    main()
