#!/usr/bin/env python3
"""Disk-resident joins and the OS page cache (paper Figure 11).

The paper's last experiment contrasts a 64-GB server — where most disk
blocks stay cached — with a 4-GB server where they do not, and shows
that the OIPJOIN's sorted, sequential block layout keeps it fast in
both regimes while the loose quadtree collapses once seeks matter.

This example runs the same join on the disk device profile under three
cache regimes (unbounded, small LRU, no cache) and prints the block-IO
split per algorithm.

Run with:  python examples/disk_vs_memory.py
"""

from repro.baselines import ALGORITHMS
from repro.core.interval import Interval
from repro.storage import BufferPool, DeviceProfile, UnboundedBufferPool
from repro.workloads import uniform_relation

CARDINALITY = 20_000
TIME_RANGE = Interval(1, 2**20)
CONTENDERS = ("oip", "lqt", "smj")


def run(name: str, buffer_pool) -> dict:
    outer = uniform_relation(
        CARDINALITY // 10, TIME_RANGE, 0.001, seed=1, name="r"
    )
    inner = uniform_relation(CARDINALITY, TIME_RANGE, 0.001, seed=2, name="s")
    join = ALGORITHMS[name](
        device=DeviceProfile.disk(), buffer_pool=buffer_pool
    )
    result = join.join(outer, inner)
    counters = result.counters
    return {
        "reads": counters.block_reads,
        "sequential": counters.sequential_reads,
        "random": counters.random_reads,
        "hits": counters.buffer_hits,
        "io_time": join.device.io_time(
            counters.sequential_reads, counters.random_reads
        ),
    }


def main() -> None:
    regimes = {
        "64GB server (everything cached)": UnboundedBufferPool,
        "4GB server (small LRU cache)": lambda: BufferPool(8),
        "cold (no cache)": lambda: None,
    }
    for regime, pool_factory in regimes.items():
        print(f"\n=== {regime} ===")
        print(
            f"  {'algo':>5} {'device reads':>13} {'sequential':>11} "
            f"{'random':>8} {'cache hits':>11} {'modelled IO ns':>15}"
        )
        for name in CONTENDERS:
            stats = run(name, pool_factory() if pool_factory else None)
            print(
                f"  {name:>5} {stats['reads']:>13,} "
                f"{stats['sequential']:>11,} {stats['random']:>8,} "
                f"{stats['hits']:>11,} {stats['io_time']:>15,.0f}"
            )
    print(
        "\nreading: oip's sorted partition build gives it mostly\n"
        "sequential reads, so its modelled IO time degrades least when\n"
        "the cache shrinks — the Figure 11(d) effect."
    )


if __name__ == "__main__":
    main()
