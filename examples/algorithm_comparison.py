#!/usr/bin/env python3
"""Compare all overlap-join algorithms on a long-lived-tuple workload.

Reproduces the qualitative message of the paper's Figure 8 at laptop
scale: as the share of long-lived tuples grows, the loose quadtree's
false hits explode and the index-based approaches pay ever more index
operations, while the OIPJOIN stays flat.

Run with:  python examples/algorithm_comparison.py
"""

import time

from repro.baselines import ALGORITHMS
from repro.core.interval import Interval
from repro.storage import CostWeights
from repro.workloads import long_lived_mixture

CARDINALITY = 1_500
TIME_RANGE = Interval(1, 2**20)
CONTENDERS = ("oip", "lqt", "rit", "sgt", "smj")


def main() -> None:
    weights = CostWeights.main_memory()
    print(
        f"{'long %':>7} | "
        + " | ".join(f"{name:>16}" for name in CONTENDERS)
    )
    print(
        f"{'':>7} | "
        + " | ".join(f"{'ms / false hits':>16}" for _ in CONTENDERS)
    )
    print("-" * (10 + 19 * len(CONTENDERS)))
    for long_percent in (0, 25, 50, 75, 100):
        outer = long_lived_mixture(
            CARDINALITY, long_percent / 100, TIME_RANGE, seed=1, name="r"
        )
        inner = long_lived_mixture(
            CARDINALITY, long_percent / 100, TIME_RANGE, seed=2, name="s"
        )
        cells = []
        reference = None
        for name in CONTENDERS:
            join = ALGORITHMS[name]()
            started = time.perf_counter()
            result = join.join(outer, inner)
            elapsed_ms = (time.perf_counter() - started) * 1e3
            if reference is None:
                reference = result.pair_keys()
            else:
                assert result.pair_keys() == reference, name
            cells.append(
                f"{elapsed_ms:7.0f} / {result.counters.false_hits:>6}"
            )
        print(f"{long_percent:>6}% | " + " | ".join(f"{c:>16}" for c in cells))

    print(
        "\n(all algorithms verified to return identical results; "
        f"modelled costs use c_cpu={weights.cpu} ns, c_io={weights.io} ns)"
    )


if __name__ == "__main__":
    main()
