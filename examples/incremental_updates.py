#!/usr/bin/env python3
"""Incrementally maintained OIP (the paper's Section-8 future work).

A monitoring scenario: sensor-session intervals stream in, old sessions
are retired, and overlap queries run continuously against the live
partitioning — no rebuilds.  When a session arrives outside the
partitioned range, the range grows by whole granules on that boundary
(the granule duration never changes, so the clustering guarantee of
Lemma 2 survives every expansion).

Run with:  python examples/incremental_updates.py
"""

import random

from repro import IncrementalOIP, Interval, OIPConfiguration
from repro.core.relation import TemporalTuple


def main() -> None:
    rng = random.Random(42)
    partitioning = IncrementalOIP(OIPConfiguration(k=8, d=60, o=0))
    print(
        f"initial range {partitioning.time_range.as_tuple()} "
        f"(k={partitioning.k}, d={partitioning.granule_duration})"
    )

    # Phase 1: a day of sessions inside the initial range.
    live = []
    for session_id in range(200):
        start = rng.randint(0, 400)
        tup = TemporalTuple(start, start + rng.randint(1, 90), session_id)
        partitioning.insert(tup)
        live.append(tup)
    print(
        f"after 200 inserts: {partitioning.partition_count} partitions, "
        f"{len(partitioning)} tuples"
    )

    # Phase 2: sessions spill past both boundaries -> auto-expansion.
    for session_id in range(200, 260):
        start = rng.randint(-300, 900)
        tup = TemporalTuple(start, start + rng.randint(1, 90), session_id)
        partitioning.insert(tup)
        live.append(tup)
    print(
        f"after boundary spills: range {partitioning.time_range.as_tuple()} "
        f"(k grew to {partitioning.k}; d still "
        f"{partitioning.granule_duration})"
    )

    # Phase 3: retire the first half of the sessions.
    for tup in live[:130]:
        assert partitioning.delete(tup)
    live = live[130:]
    print(
        f"after retiring 130 sessions: {partitioning.partition_count} "
        f"partitions, {len(partitioning)} tuples"
    )

    # Continuous queries against the live structure.
    for window in (Interval(100, 150), Interval(-250, -200), Interval(700, 880)):
        found = partitioning.query(window)
        candidates = sum(1 for _ in partitioning.candidates(window))
        expected = sum(1 for t in live if t.overlaps_interval(window))
        assert len(found) == expected
        print(
            f"query {str(window.as_tuple()):>12}: {len(found):>3} matches "
            f"({candidates - len(found)} false hits among "
            f"{candidates} candidates)"
        )

    partitioning.check_invariants()
    print("\nall OIP invariants hold after every update (Lemma 2 intact)")


if __name__ == "__main__":
    main()
