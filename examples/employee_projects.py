#!/usr/bin/env python3
"""The paper's motivating query (Section 1).

    "To find employees who are employed during at least 5 months when a
     project is ongoing, we first must determine the overlapping interval
     between an employee and a project, and then check that the duration
     of the overlapping interval is at least 5 months."

This example models a small HR database at day granularity, lets the
planner pick the join (it chooses the OIPJOIN because assignments are
long-lived), computes the overlap join, and refines the result with the
duration predicate — the evaluate-after-join pattern the overlap join
enables for the optimizer.

Run with:  python examples/employee_projects.py
"""

from datetime import date

from repro import TemporalRelation
from repro.engine import (
    JoinPlanner,
    OverlapJoinOperator,
    ScanOperator,
    overlaps_at_least,
)

EPOCH = date(2010, 1, 1)


def day(year: int, month: int, dom: int = 1) -> int:
    """Map a calendar date to a day ordinal (discrete time domain)."""
    return (date(year, month, dom) - EPOCH).days


def as_date(ordinal: int) -> date:
    return date.fromordinal(EPOCH.toordinal() + ordinal)


def main() -> None:
    employees = TemporalRelation.from_records(
        [
            (day(2010, 3), day(2012, 6, 30), "ann"),
            (day(2011, 1), day(2011, 3, 15), "bob"),
            (day(2011, 11), day(2013, 12, 31), "cho"),
            (day(2012, 5), day(2012, 8, 31), "dee"),
            (day(2010, 1), day(2014, 6, 30), "eva"),
        ],
        name="employees",
    )
    projects = TemporalRelation.from_records(
        [
            (day(2010, 6), day(2011, 2, 28), "apollo"),
            (day(2011, 12), day(2012, 7, 31), "gemini"),
            (day(2012, 8), day(2012, 8, 20), "sprint-42"),
            (day(2013, 2), day(2014, 1, 31), "mercury"),
        ],
        name="projects",
    )

    planner = JoinPlanner()
    plan = planner.plan(employees, projects)
    print(f"planner chose: {plan.algorithm.name}")
    print(f"  reason: {plan.reason}\n")

    five_months = 5 * 30  # days
    query = OverlapJoinOperator(
        ScanOperator(employees),
        ScanOperator(projects),
        algorithm=plan.algorithm,
    ).refine(overlaps_at_least(five_months))

    rows = query.execute()
    print(
        f"employees working >= 5 months during a project "
        f"({len(rows)} matches):"
    )
    for employee, project, shared in sorted(
        rows, key=lambda row: (row[0].payload, row[1].payload)
    ):
        print(
            f"  {employee.payload:>4} on {project.payload:<10} "
            f"{as_date(shared.start)} .. {as_date(shared.end)} "
            f"({shared.duration} days)"
        )

    stats = query.last_result.counters
    print(
        f"\njoin produced {query.last_result.cardinality} raw pairs, "
        f"{stats.false_hits} false hits, "
        f"{stats.partition_accesses} partition accesses"
    )


if __name__ == "__main__":
    main()
